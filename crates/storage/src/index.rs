//! Hash indexes over heap tables.

use std::collections::HashMap;

use perm_types::{Tuple, Value};

/// An equality hash index on a single column.
///
/// The index maps a column value to the row ids holding it, in insertion
/// order. NULL keys are indexed too (under [`Value::Null`], which hashes and
/// compares as equal to itself in grouping semantics) — this matters for the
/// NULL-safe (`IS NOT DISTINCT FROM`) joins that Perm's aggregation rewrite
/// produces, where an index point-lookup on NULL must find NULL rows.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    column: usize,
    entries: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    pub fn new(column: usize) -> HashIndex {
        HashIndex {
            column,
            entries: HashMap::new(),
        }
    }

    /// The indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Register `tuple` (stored at `row_id`) in the index.
    pub fn insert(&mut self, tuple: &Tuple, row_id: usize) {
        self.entries
            .entry(tuple.get(self.column).clone())
            .or_default()
            .push(row_id);
    }

    /// The row ids whose indexed column equals `key` (grouping equality:
    /// NULL finds NULL, `Int(2)` finds `Float(2.0)`).
    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.entries.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(v: Value) -> Tuple {
        Tuple::new(vec![Value::Int(0), v])
    }

    #[test]
    fn lookup_returns_matching_row_ids_in_order() {
        let mut idx = HashIndex::new(1);
        idx.insert(&tup(Value::Int(5)), 0);
        idx.insert(&tup(Value::Int(7)), 1);
        idx.insert(&tup(Value::Int(5)), 2);
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(7)), &[1]);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn null_keys_are_indexed() {
        let mut idx = HashIndex::new(1);
        idx.insert(&tup(Value::Null), 0);
        idx.insert(&tup(Value::Int(1)), 1);
        idx.insert(&tup(Value::Null), 2);
        assert_eq!(idx.lookup(&Value::Null), &[0, 2]);
    }

    #[test]
    fn mixed_numeric_keys_unify() {
        let mut idx = HashIndex::new(1);
        idx.insert(&tup(Value::Int(2)), 0);
        idx.insert(&tup(Value::Float(2.0)), 1);
        assert_eq!(idx.lookup(&Value::Int(2)), &[0, 1]);
        assert_eq!(idx.lookup(&Value::Float(2.0)), &[0, 1]);
    }

    #[test]
    fn clear_empties_the_index() {
        let mut idx = HashIndex::new(0);
        idx.insert(&Tuple::new(vec![Value::Int(1)]), 0);
        idx.clear();
        assert_eq!(idx.lookup(&Value::Int(1)), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 0);
    }
}
