//! Durable catalog storage: snapshot checkpoints plus the WAL tail.
//!
//! A data directory holds at most three files:
//!
//! ```text
//! <dir>/CHECKPOINT      -- last durable catalog snapshot (atomic rename)
//! <dir>/CHECKPOINT.tmp  -- in-flight snapshot; deleted/ignored on open
//! <dir>/wal.log         -- statements committed since that snapshot
//! ```
//!
//! The checkpoint is a checksummed full serialization of the catalog —
//! schemas, rows (in the spill value codec), provenance-column metadata,
//! index columns, and view definitions (as SQL text, re-parsed on load).
//! It also records the WAL `epoch` and byte `wal_offset` it covers, which
//! is what makes checkpointing and log truncation crash-safe in any
//! interleaving:
//!
//! * checkpoint rename is atomic — a reader sees the old or the new
//!   snapshot, never a mix (a torn `CHECKPOINT.tmp` is simply ignored);
//! * after the rename the WAL is truncated and restarted with `epoch+1`;
//!   if the crash hits between those two steps, the next open sees
//!   `wal epoch == checkpoint epoch` and replays only records at
//!   `offset >= wal_offset` — never double-applying a statement that the
//!   snapshot already contains.
//!
//! [`DurableStore::open`] never panics on bad input: torn WAL tails are
//! truncated (the statement was never acknowledged), while genuine
//! corruption comes back as [`OpenOutcome::corruption`] with the failing
//! offset, alongside the last good snapshot so the caller can serve
//! reads over it (read-only degraded mode).

use std::fs::File;
use std::path::{Path, PathBuf};

use perm_sql::{parse_statement, Statement};
use perm_types::{Column, DataType, PermError, Result, Schema, Tuple, Value};

use crate::catalog::{Catalog, Relation};
use crate::failpoint;
use crate::spill::{read_value, value_encoded_len, write_value};
use crate::table::Table;
use crate::wal::{crc32, scan, FsyncPolicy, TailState, WalRecord, WalWriter, WAL_HEADER_LEN};

/// File names inside a data directory.
pub const CHECKPOINT_FILE: &str = "CHECKPOINT";
pub const CHECKPOINT_TMP: &str = "CHECKPOINT.tmp";
pub const WAL_FILE: &str = "wal.log";

/// Magic bytes opening every checkpoint file (version 1).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PERMCKP1";

fn io(operator: &str, path: &Path, e: std::io::Error) -> PermError {
    PermError::Io {
        operator: operator.to_string(),
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt(path: &Path, offset: u64, detail: impl Into<String>) -> PermError {
    PermError::Corruption {
        path: path.display().to_string(),
        offset,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Unknown => 4,
    }
}

fn type_from_tag(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Bool),
        1 => Some(DataType::Int),
        2 => Some(DataType::Float),
        3 => Some(DataType::Text),
        4 => Some(DataType::Unknown),
        _ => None,
    }
}

/// Serialize the catalog into a checkpoint body for the given WAL
/// position. Deterministic: equal catalogs yield identical bytes.
fn serialize_catalog(catalog: &Catalog, epoch: u64, wal_offset: u64) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&wal_offset.to_le_bytes());
    let rels: Vec<&Relation> = catalog.relations().collect();
    out.extend_from_slice(&(rels.len() as u32).to_le_bytes());
    for rel in rels {
        match rel {
            Relation::Table(t) => {
                out.push(0);
                put_str(&mut out, t.name());
                let cols = t.schema().columns();
                out.extend_from_slice(&(cols.len() as u32).to_le_bytes());
                for c in cols {
                    put_str(&mut out, &c.name);
                    out.push(type_tag(c.ty));
                    out.push(u8::from(c.nullable));
                    match &c.qualifier {
                        Some(q) => {
                            out.push(1);
                            put_str(&mut out, q);
                        }
                        None => out.push(0),
                    }
                }
                let prov = t.provenance_columns();
                out.extend_from_slice(&(prov.len() as u32).to_le_bytes());
                for &p in prov {
                    out.extend_from_slice(&(p as u32).to_le_bytes());
                }
                let idx = t.index_columns();
                out.extend_from_slice(&(idx.len() as u32).to_le_bytes());
                for i in idx {
                    out.extend_from_slice(&(i as u32).to_le_bytes());
                }
                out.extend_from_slice(&(t.row_count() as u64).to_le_bytes());
                for row in t.rows() {
                    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                    out.reserve(row.iter().map(value_encoded_len).sum::<u64>() as usize);
                    for v in row.iter() {
                        write_value(&mut out, v).map_err(|e| {
                            PermError::Execution(format!("checkpoint of table '{}': {e}", t.name()))
                        })?;
                    }
                }
            }
            Relation::View(v) => {
                out.push(1);
                put_str(&mut out, v.name());
                let sql = v.sql().ok_or_else(|| {
                    PermError::Execution(format!(
                        "cannot checkpoint view '{}': it has no stored SQL text \
                         (created outside the durable server API)",
                        v.name()
                    ))
                })?;
                put_str(&mut out, sql);
            }
        }
    }
    Ok(out)
}

/// Bounds-checked cursor over a checkpoint body.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "truncated: need {n} bytes at position {}",
                self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::result::Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> std::result::Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> std::result::Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn value(&mut self) -> std::result::Result<Value, String> {
        let mut rest = &self.data[self.pos..];
        let before = rest.len();
        let v = read_value(&mut rest).map_err(|e| e.to_string())?;
        self.pos += before - rest.len();
        Ok(v)
    }
}

fn decode_catalog(body: &[u8]) -> std::result::Result<(u64, u64, Catalog), (usize, String)> {
    let mut cur = Cur { data: body, pos: 0 };
    decode_catalog_at(&mut cur).map_err(|detail| (cur.pos, detail))
}

fn decode_catalog_at(cur: &mut Cur<'_>) -> std::result::Result<(u64, u64, Catalog), String> {
    {
        let epoch = cur.u64()?;
        let wal_offset = cur.u64()?;
        let nrel = cur.u32()?;
        let mut catalog = Catalog::new();
        for _ in 0..nrel {
            match cur.u8()? {
                0 => {
                    let name = cur.str()?;
                    let ncols = cur.u32()?;
                    let mut cols = Vec::with_capacity(ncols as usize);
                    for _ in 0..ncols {
                        let cname = cur.str()?;
                        let ty = type_from_tag(cur.u8()?)
                            .ok_or_else(|| format!("unknown type tag in table '{name}'"))?;
                        let nullable = cur.u8()? != 0;
                        let mut col = Column::new(cname, ty);
                        col.nullable = nullable;
                        if cur.u8()? != 0 {
                            col.qualifier = Some(cur.str()?);
                        }
                        cols.push(col);
                    }
                    let mut table = Table::new(&name, Schema::new(cols));
                    let nprov = cur.u32()?;
                    let mut prov = Vec::with_capacity(nprov as usize);
                    for _ in 0..nprov {
                        prov.push(cur.u32()? as usize);
                    }
                    table
                        .set_provenance_columns(prov)
                        .map_err(|e| format!("table '{name}': {}", e.message()))?;
                    let nidx = cur.u32()?;
                    for _ in 0..nidx {
                        let c = cur.u32()? as usize;
                        table
                            .create_index(c)
                            .map_err(|e| format!("table '{name}': {}", e.message()))?;
                    }
                    let nrows = cur.u64()?;
                    for _ in 0..nrows {
                        let nvals = cur.u32()? as usize;
                        let mut values = Vec::with_capacity(nvals);
                        for _ in 0..nvals {
                            values.push(cur.value()?);
                        }
                        table.push_raw(Tuple::new(values));
                    }
                    catalog
                        .create_table(table)
                        .map_err(|e| format!("table '{name}': {}", e.message()))?;
                }
                1 => {
                    let name = cur.str()?;
                    let sql = cur.str()?;
                    let query = match parse_statement(&sql) {
                        Ok(Statement::Query(q)) => q,
                        Ok(_) => return Err(format!("view '{name}': stored SQL is not a query")),
                        Err(e) => {
                            return Err(format!(
                                "view '{name}': stored SQL fails to parse: {}",
                                e.message()
                            ))
                        }
                    };
                    catalog
                        .create_view_with_sql(&name, query, sql)
                        .map_err(|e| format!("view '{name}': {}", e.message()))?;
                }
                k => return Err(format!("unknown relation kind {k}")),
            }
        }
        if cur.pos != cur.data.len() {
            return Err("trailing bytes after catalog".to_string());
        }
        Ok((epoch, wal_offset, catalog))
    }
}

/// Read and validate the checkpoint at `path`. `Ok(None)` when the file
/// does not exist (a fresh data directory).
fn read_checkpoint(path: &Path) -> Result<Option<(u64, u64, Catalog)>> {
    if std::fs::metadata(path).is_err() {
        return Ok(None);
    }
    let bytes = failpoint::read_file("checkpoint.read", path, "checkpoint read")?;
    if bytes.len() < 16 {
        return Err(corrupt(path, 0, "checkpoint shorter than its header"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(path, 0, "bad checkpoint magic"));
    }
    let body_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if bytes.len() - 16 != body_len {
        return Err(corrupt(
            path,
            8,
            format!(
                "checkpoint body is {} bytes, header says {body_len}",
                bytes.len() - 16
            ),
        ));
    }
    let body = &bytes[16..];
    if crc32(body) != crc {
        return Err(corrupt(path, 12, "checkpoint checksum mismatch"));
    }
    match decode_catalog(body) {
        Ok(parsed) => Ok(Some(parsed)),
        Err((pos, detail)) => Err(corrupt(path, 16 + pos as u64, detail)),
    }
}

// ---------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------

/// What [`DurableStore::open`] found on disk.
#[derive(Debug)]
pub struct OpenOutcome {
    /// Catalog as of the last durable checkpoint (empty for a fresh
    /// directory, or when the checkpoint itself is the corrupt artifact).
    pub base: Catalog,
    /// WAL records committed after that snapshot, oldest first, each with
    /// its byte offset in the log (for error reporting during replay).
    pub replay: Vec<(u64, WalRecord)>,
    /// The live store — `None` when recovery hit unrecoverable corruption
    /// and the caller must degrade to read-only over `base` + the valid
    /// `replay` prefix.
    pub store: Option<DurableStore>,
    /// The typed corruption, when `store` is `None`.
    pub corruption: Option<PermError>,
}

/// A recovered, writable data directory: WAL appends and checkpoints.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: WalWriter,
}

impl DurableStore {
    /// Open (or create) the data directory, read the checkpoint, scan the
    /// WAL tail, and classify what recovery has to do. Torn tails are
    /// truncated here; corruption is reported, not repaired.
    pub fn open(dir: &Path, fsync: FsyncPolicy) -> Result<OpenOutcome> {
        std::fs::create_dir_all(dir).map_err(|e| io("data dir create", dir, e))?;
        // A leftover tmp is an in-flight checkpoint that never committed.
        let _ = std::fs::remove_file(dir.join(CHECKPOINT_TMP));

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let (base, ckpt_epoch, wal_offset) = match read_checkpoint(&ckpt_path) {
            Ok(Some((epoch, offset, catalog))) => (catalog, epoch, offset),
            Ok(None) => (Catalog::new(), 0, WAL_HEADER_LEN),
            Err(e @ PermError::Corruption { .. }) => {
                // The snapshot itself is damaged: nothing trustworthy to
                // replay onto. Serve nothing rather than something wrong.
                return Ok(OpenOutcome {
                    base: Catalog::new(),
                    replay: Vec::new(),
                    store: None,
                    corruption: Some(e),
                });
            }
            Err(e) => return Err(e),
        };

        let read_only = |base: Catalog, replay: Vec<(u64, WalRecord)>, e: PermError| {
            Ok(OpenOutcome {
                base,
                replay,
                store: None,
                corruption: Some(e),
            })
        };

        if std::fs::metadata(&wal_path).is_err() {
            // Fresh directory, or checkpoint present with no log yet.
            let wal = WalWriter::create(&wal_path, ckpt_epoch + 1, fsync)?;
            return Ok(OpenOutcome {
                base,
                replay: Vec::new(),
                store: Some(DurableStore {
                    dir: dir.to_path_buf(),
                    wal,
                }),
                corruption: None,
            });
        }

        let data = failpoint::read_file("wal.read", &wal_path, "wal recovery")?;
        let s = scan(&data);

        // A missing/torn header can only come from a crash while the log
        // was being created or reset — nothing after it was ever durable.
        let Some(wal_epoch) = s.epoch else {
            let wal = WalWriter::create(&wal_path, ckpt_epoch + 1, fsync)?;
            return Ok(OpenOutcome {
                base,
                replay: Vec::new(),
                store: Some(DurableStore {
                    dir: dir.to_path_buf(),
                    wal,
                }),
                corruption: None,
            });
        };

        // Which records does the checkpoint NOT already contain?
        let replay_from = if wal_epoch == ckpt_epoch {
            wal_offset
        } else if wal_epoch == ckpt_epoch + 1 {
            WAL_HEADER_LEN
        } else {
            return read_only(
                base,
                Vec::new(),
                corrupt(
                    &wal_path,
                    8,
                    format!("WAL epoch {wal_epoch} does not extend checkpoint epoch {ckpt_epoch}"),
                ),
            );
        };

        match s.tail {
            TailState::Corrupt { offset, detail } => {
                let replay = s
                    .records
                    .into_iter()
                    .filter(|(off, _)| *off >= replay_from)
                    .collect();
                read_only(base, replay, corrupt(&wal_path, offset, detail))
            }
            TailState::Clean | TailState::Torn => {
                if s.valid_len < replay_from {
                    // The log ends before the point the checkpoint says it
                    // covers: records the snapshot already holds are gone
                    // from the log, which a crash cannot produce.
                    return read_only(
                        base,
                        Vec::new(),
                        corrupt(
                            &wal_path,
                            s.valid_len,
                            format!(
                                "WAL ends at {} but the checkpoint covers it up to {replay_from}",
                                s.valid_len
                            ),
                        ),
                    );
                }
                let replay = s
                    .records
                    .into_iter()
                    .filter(|(off, _)| *off >= replay_from)
                    .collect();
                let wal = WalWriter::open_at(&wal_path, wal_epoch, s.valid_len, fsync)?;
                Ok(OpenOutcome {
                    base,
                    replay,
                    store: Some(DurableStore {
                        dir: dir.to_path_buf(),
                        wal,
                    }),
                    corruption: None,
                })
            }
        }
    }

    /// Append one committed statement to the log (fsync per the open
    /// policy). See [`WalWriter::append`] for the rollback guarantees.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        self.wal.append(rec)
    }

    /// Records appended since the last checkpoint (or open).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.wal.records_since_reset()
    }

    /// Current WAL byte length.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// True when an unrecovered append failure disabled the log; reads
    /// still work, commits fail until the next open repairs the tail.
    pub fn is_poisoned(&self) -> bool {
        self.wal.is_poisoned()
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write a durable snapshot of `catalog` and truncate the log.
    ///
    /// Protocol: serialize → write `CHECKPOINT.tmp` → fsync → rename over
    /// `CHECKPOINT` → fsync the directory → reset the WAL to the next
    /// epoch. A failure before the rename leaves the previous snapshot
    /// intact; a failure after it (log reset) leaves a durable snapshot
    /// whose epoch/offset pair makes the old log records harmless.
    pub fn checkpoint(&mut self, catalog: &Catalog) -> Result<()> {
        let epoch = self.wal.epoch();
        let body = serialize_catalog(catalog, epoch, self.wal.len())?;
        let mut bytes = Vec::with_capacity(16 + body.len());
        bytes.extend_from_slice(CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);

        let tmp = self.dir.join(CHECKPOINT_TMP);
        let dest = self.dir.join(CHECKPOINT_FILE);
        let write = (|| {
            let mut f = File::create(&tmp).map_err(|e| io("checkpoint create", &tmp, e))?;
            failpoint::write_all("checkpoint.write", &mut f, &bytes, "checkpoint", &tmp)?;
            failpoint::sync("checkpoint.sync", &f, "checkpoint", &tmp)?;
            failpoint::rename("checkpoint.rename", &tmp, &dest, "checkpoint")?;
            let dirf =
                File::open(&self.dir).map_err(|e| io("checkpoint dir open", &self.dir, e))?;
            failpoint::sync("checkpoint.dir_sync", &dirf, "checkpoint", &self.dir)
        })();
        match write {
            Ok(()) => {
                // The snapshot is durable; truncating the log is now safe.
                // If the reset fails the writer poisons itself — commits
                // stop, but no data is at risk (epoch reconciliation makes
                // the stale records harmless).
                self.wal.reset(epoch + 1)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType};

    fn temp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("perm-durtest-{}-{name}", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn rich_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "users",
            Schema::new(vec![
                Column::new("uid", DataType::Int).not_null(),
                Column::new("name", DataType::Text),
                Column::new("score", DataType::Float),
            ]),
        );
        t.insert(Tuple::new(vec![
            Value::Int(1),
            Value::text("bert"),
            Value::Float(1.5),
        ]))
        .unwrap();
        t.insert(Tuple::new(vec![Value::Int(2), Value::Null, Value::Null]))
            .unwrap();
        t.create_index(0).unwrap();
        t.set_provenance_columns(vec![1]).unwrap();
        c.create_table(t).unwrap();
        let sql = "SELECT uid FROM users";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        c.create_view_with_sql("v", q, sql).unwrap();
        c
    }

    fn assert_catalogs_equal(a: &Catalog, b: &Catalog) {
        assert_eq!(a.relation_names(), b.relation_names());
        for name in a.relation_names() {
            match (a.get(name).unwrap(), b.get(name).unwrap()) {
                (Relation::Table(x), Relation::Table(y)) => {
                    assert_eq!(x.schema(), y.schema(), "{name}");
                    assert_eq!(x.rows(), y.rows(), "{name}");
                    assert_eq!(x.provenance_columns(), y.provenance_columns(), "{name}");
                    assert_eq!(x.index_columns(), y.index_columns(), "{name}");
                }
                (Relation::View(x), Relation::View(y)) => {
                    assert_eq!(x.definition(), y.definition(), "{name}");
                    assert_eq!(x.sql(), y.sql(), "{name}");
                }
                _ => panic!("{name}: kind mismatch"),
            }
        }
    }

    #[test]
    fn checkpoint_round_trips_a_rich_catalog() {
        let dir = temp_dir("roundtrip");
        let _c = Cleanup(dir.clone());
        let catalog = rich_catalog();
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store.checkpoint(&catalog).unwrap();
        drop(store);

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.corruption.is_none());
        assert!(out.replay.is_empty());
        assert_catalogs_equal(&out.base, &catalog);
        // The rebuilt index actually answers lookups.
        assert_eq!(
            out.base
                .table("users")
                .unwrap()
                .index_lookup(0, &Value::Int(2))
                .unwrap(),
            &[1]
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = serialize_catalog(&rich_catalog(), 3, 99).unwrap();
        let b = serialize_catalog(&rich_catalog(), 3, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn view_without_sql_cannot_be_checkpointed() {
        let mut c = Catalog::new();
        let Statement::Query(q) = parse_statement("SELECT 1").unwrap() else {
            unreachable!()
        };
        c.create_view("v", q).unwrap();
        let err = serialize_catalog(&c, 1, WAL_HEADER_LEN).unwrap_err();
        assert!(err.message().contains("no stored SQL"), "{err}");
    }

    #[test]
    fn wal_records_replay_after_reopen() {
        let dir = temp_dir("replay");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store
            .append(&WalRecord::Statement("CREATE TABLE t (x int)".into()))
            .unwrap();
        store
            .append(&WalRecord::Statement("INSERT INTO t VALUES (1)".into()))
            .unwrap();
        assert_eq!(store.records_since_checkpoint(), 2);
        drop(store);

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.corruption.is_none());
        assert!(out.base.is_empty());
        let stmts: Vec<&WalRecord> = out.replay.iter().map(|(_, r)| r).collect();
        assert_eq!(
            stmts,
            vec![
                &WalRecord::Statement("CREATE TABLE t (x int)".into()),
                &WalRecord::Statement("INSERT INTO t VALUES (1)".into()),
            ]
        );
    }

    #[test]
    fn checkpoint_truncates_wal_and_stops_replaying() {
        let dir = temp_dir("truncate");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store
            .append(&WalRecord::Statement("CREATE TABLE t (x int)".into()))
            .unwrap();
        let mut catalog = Catalog::new();
        catalog
            .create_table(Table::new(
                "t",
                Schema::new(vec![Column::new("x", DataType::Int)]),
            ))
            .unwrap();
        store.checkpoint(&catalog).unwrap();
        assert_eq!(store.records_since_checkpoint(), 0);
        store
            .append(&WalRecord::Statement("INSERT INTO t VALUES (1)".into()))
            .unwrap();
        drop(store);

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.corruption.is_none());
        assert_eq!(out.base.relation_names(), vec!["t"]);
        let stmts: Vec<&WalRecord> = out.replay.iter().map(|(_, r)| r).collect();
        assert_eq!(
            stmts,
            vec![&WalRecord::Statement("INSERT INTO t VALUES (1)".into())],
            "only the post-checkpoint record replays"
        );
    }

    #[test]
    fn stale_wal_after_checkpoint_is_not_double_applied() {
        // Simulate a crash between checkpoint rename and WAL reset: the
        // log still holds records the snapshot already contains.
        let dir = temp_dir("stale");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store
            .append(&WalRecord::Statement("CREATE TABLE t (x int)".into()))
            .unwrap();
        let wal_before = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let mut catalog = Catalog::new();
        catalog
            .create_table(Table::new(
                "t",
                Schema::new(vec![Column::new("x", DataType::Int)]),
            ))
            .unwrap();
        store.checkpoint(&catalog).unwrap();
        drop(store);
        // Undo the WAL reset, as if the crash hit first.
        std::fs::write(dir.join(WAL_FILE), &wal_before).unwrap();

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.corruption.is_none());
        assert_eq!(out.base.relation_names(), vec!["t"]);
        assert!(
            out.replay.is_empty(),
            "records covered by the checkpoint must not replay"
        );
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_read_only() {
        let dir = temp_dir("badckpt");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store.checkpoint(&rich_catalog()).unwrap();
        drop(store);
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.store.is_none());
        let err = out.corruption.unwrap();
        assert_eq!(err.kind(), "corruption");
        assert!(out.base.is_empty());
    }

    #[test]
    fn mid_log_corruption_reports_offset_and_keeps_prefix() {
        let dir = temp_dir("midlog");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store
            .append(&WalRecord::Statement("CREATE TABLE t (x int)".into()))
            .unwrap();
        store
            .append(&WalRecord::Statement("INSERT INTO t VALUES (1)".into()))
            .unwrap();
        drop(store);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Damage the first record's payload; the second record follows it.
        bytes[WAL_HEADER_LEN as usize + 9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(out.store.is_none());
        match out.corruption.unwrap() {
            PermError::Corruption { offset, .. } => assert_eq!(offset, WAL_HEADER_LEN),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = temp_dir("torntail");
        let _c = Cleanup(dir.clone());
        let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut store = out.store.unwrap();
        store
            .append(&WalRecord::Statement("CREATE TABLE t (x int)".into()))
            .unwrap();
        store
            .append(&WalRecord::Statement("INSERT INTO t VALUES (1)".into()))
            .unwrap();
        drop(store);
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Chop the last record mid-frame: a torn append.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        for round in 0..2 {
            let out = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            assert!(out.corruption.is_none(), "round {round}");
            let stmts: Vec<&WalRecord> = out.replay.iter().map(|(_, r)| r).collect();
            assert_eq!(
                stmts,
                vec![&WalRecord::Statement("CREATE TABLE t (x int)".into())],
                "round {round}: torn record dropped, committed prefix kept"
            );
        }
        // The torn bytes really are gone from disk after the first open:
        // the file now ends exactly where the first record does.
        let repaired = std::fs::read(&path).unwrap();
        let s = scan(&repaired);
        assert_eq!(s.tail, TailState::Clean);
        assert_eq!(s.valid_len, repaired.len() as u64);
        assert_eq!(s.records.len(), 1);
    }
}
