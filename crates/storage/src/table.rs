//! In-memory heap tables.

use std::sync::OnceLock;

use perm_types::{PermError, Result, Schema, Tuple, Value};

use crate::index::HashIndex;
use crate::stats::TableStats;

/// An in-memory heap table: a schema plus a vector of tuples.
///
/// Tables optionally carry **provenance column metadata**: the positions of
/// columns that hold provenance attributes. This is how eagerly-materialized
/// provenance (`CREATE TABLE p AS SELECT PROVENANCE …`) is remembered, so
/// that a later `SELECT PROVENANCE … FROM p` treats those columns as
/// external provenance and propagates them untouched instead of duplicating
/// `p`'s columns.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    provenance_columns: Vec<usize>,
    indexes: Vec<HashIndex>,
    /// Lazily computed statistics, cached through a shared reference so
    /// read-only sessions on a shared catalog can use them; reset on
    /// mutation.
    stats: OnceLock<TableStats>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            provenance_columns: self.provenance_columns.clone(),
            indexes: self.indexes.clone(),
            stats: match self.stats.get() {
                Some(s) => OnceLock::from(s.clone()),
                None => OnceLock::new(),
            },
        }
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            provenance_columns: Vec::new(),
            indexes: Vec::new(),
            stats: OnceLock::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The positions of this table's provenance columns (empty for ordinary
    /// tables).
    pub fn provenance_columns(&self) -> &[usize] {
        &self.provenance_columns
    }

    /// Record which columns are provenance attributes (eager provenance).
    pub fn set_provenance_columns(&mut self, cols: Vec<usize>) -> Result<()> {
        for &c in &cols {
            if c >= self.schema.len() {
                return Err(PermError::Catalog(format!(
                    "provenance column index {c} out of range for table '{}' with {} columns",
                    self.name,
                    self.schema.len()
                )));
            }
        }
        self.provenance_columns = cols;
        Ok(())
    }

    /// Append a tuple after validating arity, types (with implicit
    /// coercion) and NOT NULL constraints.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        let coerced = self.check_tuple(tuple)?;
        self.push_raw(coerced);
        Ok(())
    }

    /// Append many tuples; stops at the first invalid one.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut n = 0;
        for t in tuples {
            self.insert(t)?;
            n += 1;
        }
        Ok(n)
    }

    /// Append a tuple that is already known to match the schema
    /// (engine-internal materialization). Indexes and stats stay coherent.
    pub fn push_raw(&mut self, tuple: Tuple) {
        let row_id = self.rows.len();
        for idx in &mut self.indexes {
            idx.insert(&tuple, row_id);
        }
        self.rows.push(tuple);
        self.stats.take();
    }

    fn check_tuple(&self, tuple: Tuple) -> Result<Tuple> {
        if tuple.len() != self.schema.len() {
            return Err(PermError::Catalog(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.len(),
                tuple.len()
            )));
        }
        let mut values = Vec::with_capacity(tuple.len());
        for (i, v) in tuple.into_values().into_iter().enumerate() {
            let col = self.schema.column(i);
            if v.is_null() {
                if !col.nullable {
                    return Err(PermError::Catalog(format!(
                        "null value in column '{}' of table '{}' violates NOT NULL",
                        col.name, self.name
                    )));
                }
                values.push(v);
                continue;
            }
            if col.ty.accepts(v.data_type()) {
                // Implicit Int -> Float widening still normalizes storage.
                if col.ty != v.data_type() && col.ty != perm_types::DataType::Unknown {
                    values.push(v.cast(col.ty)?);
                } else {
                    values.push(v);
                }
            } else {
                // One cast attempt (e.g. text column receiving an int).
                values.push(v.cast(col.ty).map_err(|_| {
                    PermError::Catalog(format!(
                        "column '{}' of table '{}' is {}, got {} ({})",
                        col.name,
                        self.name,
                        col.ty,
                        v,
                        v.data_type()
                    ))
                })?);
            }
        }
        Ok(Tuple::new(values))
    }

    /// Remove all rows.
    pub fn truncate(&mut self) {
        self.rows.clear();
        for idx in &mut self.indexes {
            idx.clear();
        }
        self.stats.take();
    }

    /// Remove the rows whose positions are in `doomed` (`DELETE`),
    /// returning how many were removed. Indexes are rebuilt (row ids
    /// shift) and the statistics cache is invalidated, so the cost model
    /// never plans against stale row counts.
    pub fn delete_rows(&mut self, doomed: &[usize]) -> usize {
        if doomed.is_empty() {
            return 0;
        }
        let mut kill = vec![false; self.rows.len()];
        for &i in doomed {
            kill[i] = true;
        }
        let before = self.rows.len();
        let mut it = kill.iter();
        self.rows
            // INVARIANT: `kill` was built with one entry per row, so the
            // iterator cannot run out before `retain` does.
            .retain(|_| !*it.next().expect("mask covers all rows"));
        self.rebuild_indexes();
        self.stats.take();
        before - self.rows.len()
    }

    /// Replace the rows at the given positions (`UPDATE`), validating
    /// each replacement against the schema (types coerced, NOT NULL
    /// enforced). Indexes are rebuilt and the statistics cache is
    /// invalidated. Nothing is written if any replacement fails.
    pub fn update_rows(&mut self, updates: Vec<(usize, Tuple)>) -> Result<usize> {
        let checked: Vec<(usize, Tuple)> = updates
            .into_iter()
            .map(|(i, t)| Ok((i, self.check_tuple(t)?)))
            .collect::<Result<_>>()?;
        let n = checked.len();
        for (i, t) in checked {
            self.rows[i] = t;
        }
        if n > 0 {
            self.rebuild_indexes();
            self.stats.take();
        }
        Ok(n)
    }

    /// Rebuild every index from the current rows (after deletes/updates
    /// shifted or replaced row ids).
    fn rebuild_indexes(&mut self) {
        for idx in &mut self.indexes {
            idx.clear();
            for (row_id, t) in self.rows.iter().enumerate() {
                idx.insert(t, row_id);
            }
        }
    }

    /// Create a hash index on `column` (idempotent).
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.len() {
            return Err(PermError::Catalog(format!(
                "cannot index column {column} of table '{}' ({} columns)",
                self.name,
                self.schema.len()
            )));
        }
        if self.index_on(column).is_some() {
            return Ok(());
        }
        let mut idx = HashIndex::new(column);
        for (row_id, t) in self.rows.iter().enumerate() {
            idx.insert(t, row_id);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// The columns that carry a hash index, in creation order (used by
    /// checkpoints to rebuild indexes on recovery).
    pub fn index_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(HashIndex::column).collect()
    }

    /// The hash index on `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&HashIndex> {
        self.indexes.iter().find(|i| i.column() == column)
    }

    /// Row ids matching `column = key` via index, or `None` if unindexed.
    pub fn index_lookup(&self, column: usize, key: &Value) -> Option<&[usize]> {
        self.index_on(column).map(|i| i.lookup(key))
    }

    /// Current statistics, computed on first use and cached until the next
    /// mutation. Works through shared references, so any number of
    /// concurrent readers of a shared catalog get (and reuse) the same
    /// cached statistics.
    pub fn stats(&self) -> &TableStats {
        self.stats
            .get_or_init(|| TableStats::compute(&self.schema, &self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType};

    fn users() -> Table {
        Table::new(
            "users",
            Schema::new(vec![
                Column::new("uid", DataType::Int).not_null(),
                Column::new("name", DataType::Text),
            ]),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut t = users();
        let err = t.insert(Tuple::new(vec![Value::Int(1)])).unwrap_err();
        assert_eq!(err.kind(), "catalog");
        assert!(err.message().contains("expects 2 values"));
    }

    #[test]
    fn insert_enforces_not_null() {
        let mut t = users();
        let err = t
            .insert(Tuple::new(vec![Value::Null, Value::text("Bert")]))
            .unwrap_err();
        assert!(err.message().contains("NOT NULL"));
    }

    #[test]
    fn insert_allows_null_in_nullable_column() {
        let mut t = users();
        t.insert(Tuple::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn insert_coerces_int_to_float() {
        let mut t = Table::new(
            "m",
            Schema::new(vec![Column::new("score", DataType::Float)]),
        );
        t.insert(Tuple::new(vec![Value::Int(3)])).unwrap();
        assert_eq!(t.rows()[0].get(0), &Value::Float(3.0));
    }

    #[test]
    fn insert_casts_to_text_column() {
        let mut t = Table::new("m", Schema::new(vec![Column::new("s", DataType::Text)]));
        t.insert(Tuple::new(vec![Value::Int(42)])).unwrap();
        assert_eq!(t.rows()[0].get(0), &Value::text("42"));
    }

    #[test]
    fn insert_rejects_uncastable_value() {
        let mut t = Table::new("m", Schema::new(vec![Column::new("x", DataType::Int)]));
        assert!(t.insert(Tuple::new(vec![Value::text("abc")])).is_err());
    }

    #[test]
    fn provenance_columns_are_recorded_and_validated() {
        let mut t = users();
        t.set_provenance_columns(vec![1]).unwrap();
        assert_eq!(t.provenance_columns(), &[1]);
        assert!(t.set_provenance_columns(vec![9]).is_err());
    }

    #[test]
    fn index_is_maintained_across_inserts() {
        let mut t = users();
        t.create_index(0).unwrap();
        t.insert(Tuple::new(vec![Value::Int(1), Value::text("Bert")]))
            .unwrap();
        t.insert(Tuple::new(vec![Value::Int(2), Value::text("Gert")]))
            .unwrap();
        t.insert(Tuple::new(vec![Value::Int(1), Value::text("Bert2")]))
            .unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[0, 2]);
        assert_eq!(t.index_lookup(0, &Value::Int(3)).unwrap(), &[] as &[usize]);
        assert!(t.index_lookup(1, &Value::text("Bert")).is_none());
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = users();
        t.insert(Tuple::new(vec![Value::Int(7), Value::Null]))
            .unwrap();
        t.create_index(0).unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(7)).unwrap(), &[0]);
    }

    #[test]
    fn create_index_out_of_range() {
        assert!(users().create_index(5).is_err());
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = users();
        t.create_index(0).unwrap();
        t.insert(Tuple::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[] as &[usize]);
    }

    #[test]
    fn stats_cache_invalidates_on_insert() {
        let mut t = users();
        t.insert(Tuple::new(vec![Value::Int(1), Value::text("a")]))
            .unwrap();
        assert_eq!(t.stats().row_count, 1);
        t.insert(Tuple::new(vec![Value::Int(2), Value::text("b")]))
            .unwrap();
        assert_eq!(t.stats().row_count, 2);
    }

    fn three_users() -> Table {
        let mut t = users();
        t.insert_all([
            Tuple::new(vec![Value::Int(1), Value::text("a")]),
            Tuple::new(vec![Value::Int(2), Value::text("b")]),
            Tuple::new(vec![Value::Int(3), Value::text("c")]),
        ])
        .unwrap();
        t
    }

    #[test]
    fn delete_removes_rows_rebuilds_indexes_and_invalidates_stats() {
        let mut t = three_users();
        t.create_index(0).unwrap();
        assert_eq!(t.stats().row_count, 3, "stats cached before the delete");
        assert_eq!(t.delete_rows(&[0, 2]), 2);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.rows()[0].get(0), &Value::Int(2));
        // Row ids shifted: the survivor is now row 0 in the index.
        assert_eq!(t.index_lookup(0, &Value::Int(2)).unwrap(), &[0]);
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[] as &[usize]);
        // The cost model sees the new row count immediately.
        assert_eq!(t.stats().row_count, 1);
        assert_eq!(t.delete_rows(&[]), 0, "empty delete is a no-op");
    }

    #[test]
    fn update_replaces_rows_rebuilds_indexes_and_invalidates_stats() {
        let mut t = three_users();
        t.create_index(0).unwrap();
        assert_eq!(t.stats().columns[0].n_distinct, 3);
        t.update_rows(vec![(0, Tuple::new(vec![Value::Int(2), Value::text("z")]))])
            .unwrap();
        assert_eq!(t.rows()[0].get(1), &Value::text("z"));
        // Two rows now share key 2; the old key 1 entry is gone.
        assert_eq!(t.index_lookup(0, &Value::Int(2)).unwrap(), &[0, 1]);
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap(), &[] as &[usize]);
        assert_eq!(t.stats().columns[0].n_distinct, 2, "stats recomputed");
    }

    #[test]
    fn update_validates_before_writing() {
        let mut t = three_users();
        let err = t
            .update_rows(vec![
                (0, Tuple::new(vec![Value::Int(9), Value::text("ok")])),
                (1, Tuple::new(vec![Value::Null, Value::text("bad")])),
            ])
            .unwrap_err();
        assert!(err.message().contains("NOT NULL"), "{err}");
        // Nothing was written: the first assignment did not apply either.
        assert_eq!(t.rows()[0].get(0), &Value::Int(1));
    }
}
