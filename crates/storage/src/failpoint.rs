//! Deterministic fault injection, re-exported from [`perm_fault`].
//!
//! The failpoint layer started life here (PR 8's durability matrix) and
//! was promoted to the shared `perm-fault` crate so the executor,
//! admission and recovery paths can carry sites too. This module keeps
//! the `perm_storage::failpoint` path working for the storage call
//! sites and every existing test.

pub use perm_fault::*;
