//! Table statistics feeding the planner's cost model.
//!
//! The statistics are deliberately simple (exact row counts, exact distinct
//! counts, null counts, min/max) because tables are in-memory and modest in
//! size; what matters for Perm is that the **cost-based rewrite-strategy
//! chooser** and the join planner share one source of cardinality truth.

use std::collections::HashSet;

use perm_types::{Schema, Tuple, Value};

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub n_distinct: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Minimum non-null value (by SQL sort order), if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
}

impl ColumnStats {
    fn empty() -> ColumnStats {
        ColumnStats {
            n_distinct: 0,
            null_count: 0,
            min: None,
            max: None,
        }
    }

    /// Estimated selectivity of `col = <literal>`: `1 / n_distinct`,
    /// clamped to (0, 1].
    pub fn eq_selectivity(&self) -> f64 {
        if self.n_distinct == 0 {
            1.0
        } else {
            1.0 / self.n_distinct as f64
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// An empty-table statistics object with the right number of columns.
    pub fn empty(n_columns: usize) -> TableStats {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStats::empty(); n_columns],
        }
    }

    /// Scan `rows` once and compute exact statistics.
    pub fn compute(schema: &Schema, rows: &[Tuple]) -> TableStats {
        let n = schema.len();
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); n];
        let mut stats = TableStats::empty(n);
        stats.row_count = rows.len();
        for row in rows {
            for (i, v) in row.values().iter().enumerate().take(n) {
                let cs = &mut stats.columns[i];
                if v.is_null() {
                    cs.null_count += 1;
                    continue;
                }
                distinct[i].insert(v.clone());
                match &cs.min {
                    None => cs.min = Some(v.clone()),
                    Some(m) if v.sort_cmp(m).is_lt() => cs.min = Some(v.clone()),
                    _ => {}
                }
                match &cs.max {
                    None => cs.max = Some(v.clone()),
                    Some(m) if v.sort_cmp(m).is_gt() => cs.max = Some(v.clone()),
                    _ => {}
                }
            }
        }
        for (i, set) in distinct.into_iter().enumerate() {
            stats.columns[i].n_distinct = set.len();
        }
        stats
    }

    /// Estimated selectivity of an equality predicate on column `col`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        self.columns
            .get(col)
            .map_or(0.1, ColumnStats::eq_selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("tag", DataType::Text),
        ])
    }

    fn rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::text("a")]),
            Tuple::new(vec![Value::Int(2), Value::Null]),
            Tuple::new(vec![Value::Int(2), Value::text("b")]),
            Tuple::new(vec![Value::Int(3), Value::text("a")]),
        ]
    }

    #[test]
    fn counts_and_distincts() {
        let s = TableStats::compute(&schema(), &rows());
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].n_distinct, 3);
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[1].n_distinct, 2);
        assert_eq!(s.columns[1].null_count, 1);
    }

    #[test]
    fn min_max_follow_sql_sort_order() {
        let s = TableStats::compute(&schema(), &rows());
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[1].min, Some(Value::text("a")));
        assert_eq!(s.columns[1].max, Some(Value::text("b")));
    }

    #[test]
    fn empty_table_stats() {
        let s = TableStats::compute(&schema(), &[]);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].n_distinct, 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.eq_selectivity(0), 1.0);
    }

    #[test]
    fn selectivity_is_inverse_distinct() {
        let s = TableStats::compute(&schema(), &rows());
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.eq_selectivity(9), 0.1, "unknown column falls back");
    }
}
