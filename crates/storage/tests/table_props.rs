//! Property tests on the storage substrate: index/scan agreement and
//! insert validation under random data.

use proptest::prelude::*;

use perm_storage::{Catalog, Table};
use perm_types::{Column, DataType, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Text),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An index point-lookup returns exactly the rows a scan finds,
    /// regardless of whether the index was built before or after loading.
    #[test]
    fn index_agrees_with_scan(
        rows in prop::collection::vec((-10i64..10, "[a-c]{0,2}"), 0..60),
        probe in -12i64..12,
        build_first in any::<bool>(),
    ) {
        let mut t = Table::new("t", schema());
        if build_first {
            t.create_index(0).unwrap();
        }
        for (k, v) in &rows {
            t.insert(Tuple::new(vec![Value::Int(*k), Value::text(v.as_str())]))
                .unwrap();
        }
        if !build_first {
            t.create_index(0).unwrap();
        }
        let key = Value::Int(probe);
        let via_index: Vec<&Tuple> = t
            .index_lookup(0, &key)
            .unwrap()
            .iter()
            .map(|&r| &t.rows()[r])
            .collect();
        let via_scan: Vec<&Tuple> = t.rows().iter().filter(|r| r.get(0) == &key).collect();
        prop_assert_eq!(via_index, via_scan);
    }

    /// Statistics are exact for row counts, null counts and distincts.
    #[test]
    fn stats_are_exact(rows in prop::collection::vec(
        proptest::option::of(-5i64..5), 0..50,
    )) {
        let mut t = Table::new("t", Schema::new(vec![Column::new("k", DataType::Int)]));
        for k in &rows {
            let v = k.map(Value::Int).unwrap_or(Value::Null);
            t.insert(Tuple::new(vec![v])).unwrap();
        }
        let stats = t.stats();
        prop_assert_eq!(stats.row_count, rows.len());
        let nulls = rows.iter().filter(|k| k.is_none()).count();
        prop_assert_eq!(stats.columns[0].null_count, nulls);
        let mut distinct: Vec<i64> = rows.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(stats.columns[0].n_distinct, distinct.len());
        if let Some(&min) = distinct.first() {
            prop_assert_eq!(stats.columns[0].min.clone(), Some(Value::Int(min)));
            prop_assert_eq!(
                stats.columns[0].max.clone(),
                Some(Value::Int(*distinct.last().unwrap()))
            );
        }
    }

    /// Catalog create/drop round-trips never corrupt other relations.
    #[test]
    fn catalog_is_isolated_per_relation(names in prop::collection::vec("[a-e]{1,3}", 1..8)) {
        let mut cat = Catalog::new();
        let mut live: Vec<String> = Vec::new();
        for n in &names {
            if cat.get(n).is_none() {
                cat.create_table(Table::new(n.clone(), schema())).unwrap();
                live.push(n.to_ascii_lowercase());
            } else {
                // Duplicate create must fail and change nothing.
                prop_assert!(cat.create_table(Table::new(n.clone(), schema())).is_err());
            }
        }
        live.sort();
        live.dedup();
        prop_assert_eq!(cat.len(), live.len());
        for n in &live {
            prop_assert!(cat.table(n).is_ok());
        }
        // Drop them all; catalog ends empty.
        for n in &live {
            prop_assert!(cat.drop_table(n, false).unwrap());
        }
        prop_assert!(cat.is_empty());
    }
}
