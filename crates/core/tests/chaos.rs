//! Engine-wide chaos harness: query lifecycle robustness under
//! cancellation, deadlines, injected faults and panics.
//!
//! Every scenario must terminate bounded (never hang), never leak (the
//! memory pool drains to zero, the admission queue empties, the spill
//! directory is clean), and either return the correct rows or a *typed*
//! error — never a panic across the API boundary and never a wrong
//! answer.
//!
//! CI runs this in release mode with `PERM_VERIFY_PLANS=1` (the `chaos`
//! job) so the static verifier also re-checks every plan the storm
//! produces.
//!
//! Failpoints are process-global, so every test here serializes on
//! [`perm_fault::test_guard`] and clears the registry on entry and exit.

use std::time::{Duration, Instant};

use perm_core::{PermServer, QueryResult, SessionOptions, Tuple, Value};

/// Seed a server with a `facts` table of `n` rows: `k` cycles through 53
/// keys (dense join fan-out), `v` is unique, `tag` cycles through 7.
fn seeded_server(n: i64) -> PermServer {
    let server = PermServer::new();
    let session = server.session();
    session
        .run_script("CREATE TABLE facts (k int, v int, tag text);")
        .unwrap();
    {
        let mut w = session.catalog_write();
        let t = w.table_mut("facts").unwrap();
        for i in 0..n {
            t.push_raw(Tuple::new(vec![
                Value::Int(i % 53),
                Value::Int(i),
                Value::text(format!("tag-{}", i % 7)),
            ]));
        }
    }
    server
}

/// A provenance self-join big enough that cancellation always lands
/// mid-flight (53 keys over 4000 rows ≈ 300k join output rows).
const LONG_JOIN: &str =
    "SELECT PROVENANCE a.k, b.v FROM facts a JOIN facts b ON a.k = b.k WHERE a.v < b.v";

/// Generous upper bound on cancellation latency: the cooperative checks
/// sit on morsel claims, batch boundaries, spill-run boundaries and the
/// stream's pull loop, all of which fire orders of magnitude faster than
/// this even on a loaded CI machine.
const LATENCY_BOUND: Duration = Duration::from_secs(5);

/// Drain a stream after cancelling it from another thread once `prefix`
/// rows arrived; returns the observed error and the latency from
/// `cancel()` to the error surfacing.
fn cancel_mid_stream(
    session: &perm_core::Session,
    sql: &str,
    prefix: usize,
) -> (perm_core::PermError, Duration) {
    let mut stream = session.query_stream(sql).unwrap();
    let handle = stream.cancel_handle();
    for _ in 0..prefix {
        stream.next().expect("prefix row").expect("prefix row ok");
    }
    let cancelled_at = Instant::now();
    let canceller = std::thread::spawn(move || handle.cancel());
    let err = loop {
        match stream.next() {
            Some(Ok(_)) => continue,
            Some(Err(e)) => break e,
            None => panic!("stream ended without surfacing the cancellation"),
        }
    };
    let latency = cancelled_at.elapsed();
    canceller.join().unwrap();
    assert!(stream.next().is_none(), "stream must fuse after the error");
    (err, latency)
}

fn assert_drained(server: &PermServer) {
    assert_eq!(server.memory_pool().used(), 0, "pool must drain to zero");
    assert_eq!(server.governor().running(), 0, "no queries still running");
    assert_eq!(server.governor().waiting(), 0, "admission queue must empty");
    assert!(
        perm_storage::spill_dir_is_clean(),
        "spill temp files must be deleted"
    );
}

// ----------------------------------------------------------------------
// Cancellation latency
// ----------------------------------------------------------------------

#[test]
fn cancel_is_prompt_at_dop_1() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    let session = server.session_with_options(SessionOptions::default().with_max_parallelism(1));
    let (err, latency) = cancel_mid_stream(&session, LONG_JOIN, 10);
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(err.to_string().contains("user requested"), "{err}");
    assert!(latency < LATENCY_BOUND, "latency {latency:?}");
    drop(session);
    assert_drained(&server);
}

#[test]
fn cancel_is_prompt_at_dop_4() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    let session = server.session_with_options(
        SessionOptions::default()
            .with_max_parallelism(4)
            .with_parallel_row_threshold(1),
    );
    let (err, latency) = cancel_mid_stream(&session, LONG_JOIN, 10);
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(latency < LATENCY_BOUND, "latency {latency:?}");
    drop(session);
    assert_drained(&server);
}

#[test]
fn cancel_is_prompt_while_spilling() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    // A starved pool forces the join build and the aggregation to
    // Grace-partition to disk; cancellation must still land promptly and
    // every spill temp file must be deleted on the unwind path.
    server.set_memory_budget(Some(16 * 1024));
    let session = server.session();
    let sql = "SELECT a.k, count(*) FROM facts a JOIN facts b ON a.k = b.k \
               GROUP BY a.k ORDER BY a.k";
    let (err, latency) = cancel_mid_stream(&session, sql, 0);
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(latency < LATENCY_BOUND, "latency {latency:?}");
    drop(session);
    assert_drained(&server);
}

// ----------------------------------------------------------------------
// Statement deadlines
// ----------------------------------------------------------------------

#[test]
fn statement_deadline_cancels_long_queries() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    let session =
        server.session_with_options(SessionOptions::default().with_statement_timeout_ms(1));
    let err = session.query(LONG_JOIN).unwrap_err();
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(err.to_string().contains("deadline exceeded"), "{err}");
    // The deadline is per statement: a fast query on the same session
    // still answers.
    let ok = session.query("SELECT count(*) FROM facts").unwrap();
    assert_eq!(ok.rows[0].values()[0], Value::Int(4_000));
    drop(session);
    assert_drained(&server);
}

// ----------------------------------------------------------------------
// Panic containment
// ----------------------------------------------------------------------

#[test]
fn worker_panic_fails_one_query_and_spares_siblings() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    let parallel = SessionOptions::default()
        .with_max_parallelism(4)
        .with_parallel_row_threshold(1);
    let session = server.session_with_options(parallel);
    let sibling = server.session_with_options(parallel);

    let baseline = sibling
        .query("SELECT k, count(*) FROM facts GROUP BY k ORDER BY k")
        .unwrap();

    // The first worker the pool starts panics; the panic must convert to
    // a typed error for that query only.
    perm_fault::configure("exec.worker.start=panic@1").unwrap();
    let err = session
        .query("SELECT k, count(*) FROM facts GROUP BY k ORDER BY k")
        .unwrap_err();
    assert_eq!(err.kind(), "execution", "{err}");
    assert!(err.to_string().contains("contained"), "{err}");

    // The pool stays healthy: the sibling session answers correctly,
    // in parallel, right after the contained panic.
    let after = sibling
        .query("SELECT k, count(*) FROM facts GROUP BY k ORDER BY k")
        .unwrap();
    assert_eq!(after, baseline, "sibling diverged after a contained panic");
    perm_fault::clear();
    drop((session, sibling));
    assert_drained(&server);
}

// ----------------------------------------------------------------------
// Server shutdown
// ----------------------------------------------------------------------

#[test]
fn shutdown_cancels_in_flight_streams_and_rejects_new_statements() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();
    let server = seeded_server(4_000);
    let session = server.session();

    let mut stream = session.query_stream(LONG_JOIN).unwrap();
    stream.next().unwrap().unwrap();
    server.shutdown();
    assert!(server.is_shutting_down());
    let err = loop {
        match stream.next() {
            Some(Ok(_)) => continue,
            Some(Err(e)) => break e,
            None => panic!("in-flight stream ended instead of cancelling"),
        }
    };
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(err.to_string().contains("server shutdown"), "{err}");

    // New statements are rejected at their first cooperative check.
    let err = session.query("SELECT count(*) FROM facts").unwrap_err();
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(err.to_string().contains("server shutdown"), "{err}");
    drop(stream);
    drop(session);
    assert_drained(&server);
}

// ----------------------------------------------------------------------
// The chaos matrix: faults × queries × cancel points
// ----------------------------------------------------------------------

/// Fault specs covering every executor chaos site (plus a no-fault
/// control). Stalls exercise slow paths, `panic` containment, `deny`
/// reservation denial (spill fallback), `io_err`/`disconnect` hard
/// errors mid-pipeline.
const FAULTS: &[&str] = &[
    "",
    "exec.morsel.claim=stall(2)@2",
    "exec.morsel.claim=io_err@2",
    "exec.worker.start=panic@1",
    "exec.kernel.batch=io_err@3",
    "exec.memory.grow=deny@2+",
    "exec.exchange.send=disconnect@2",
    "exec.admission.wait=stall(2)",
];

/// Deterministic-order queries (every shape the engine offers: grouped
/// aggregation, distinct, provenance rewrite, dense join, hash set-op)
/// so a surviving result can be compared row-for-row against baseline.
const QUERIES: &[&str] = &[
    "SELECT k, count(*), sum(v) FROM facts GROUP BY k ORDER BY k",
    "SELECT DISTINCT tag FROM facts ORDER BY tag",
    "SELECT PROVENANCE k, v FROM facts WHERE v < 200 ORDER BY v",
    "SELECT a.k, count(*) FROM facts a JOIN facts b ON a.v = b.v \
     GROUP BY a.k ORDER BY a.k",
    "SELECT k FROM facts INTERSECT SELECT k + 1 FROM facts ORDER BY k",
];

/// Error kinds a chaos scenario may legitimately surface. Anything else
/// (or a panic) is a bug.
const TYPED_KINDS: &[&str] = &["cancelled", "execution", "resource"];

fn typed(err: &perm_core::PermError) -> bool {
    TYPED_KINDS.iter().any(|k| err.kind().starts_with(k))
}

/// Splitmix-style LCG step — the harness's only randomness source, fully
/// deterministic per (fault, query) cell.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

#[test]
fn chaos_matrix_terminates_without_leaks_or_wrong_answers() {
    let _guard = perm_fault::test_guard();
    perm_fault::clear();

    // Reference answers from an unconstrained, fault-free server.
    let baseline: Vec<QueryResult> = {
        let s = seeded_server(600).session();
        QUERIES.iter().map(|q| s.query(q).unwrap()).collect()
    };

    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    for (f, fault) in FAULTS.iter().enumerate() {
        // Fresh server per fault spec so leak checks isolate the cell.
        let server = seeded_server(600);
        server.set_memory_budget(Some(32 * 1024));
        let session = server.session_with_options(
            SessionOptions::default()
                .with_max_parallelism(2)
                .with_parallel_row_threshold(1)
                .with_max_concurrent_queries(2)
                .with_admission_timeout_ms(60_000),
        );
        for (q, sql) in QUERIES.iter().enumerate() {
            // Cancel point: 0 = never, 1 = before the first row,
            // 2 = after a pseudo-random prefix.
            for cancel_mode in 0..3usize {
                if fault.is_empty() {
                    perm_fault::clear();
                } else {
                    perm_fault::configure(fault).unwrap();
                }
                let cell = format!("fault[{f}]={fault:?} query[{q}] cancel={cancel_mode}");

                let stream = match session.query_stream(sql) {
                    Ok(s) => s,
                    Err(e) => {
                        assert!(typed(&e), "{cell}: untyped error {e} ({})", e.kind());
                        continue;
                    }
                };
                let handle = stream.cancel_handle();
                let cancel_after = match cancel_mode {
                    0 => usize::MAX,
                    1 => 0,
                    _ => 1 + (lcg(&mut seed) % 64) as usize,
                };
                if cancel_after == 0 {
                    handle.cancel();
                }
                let mut got: Vec<Tuple> = Vec::new();
                let mut error = None;
                for (i, row) in stream.enumerate() {
                    if i + 1 == cancel_after {
                        handle.cancel();
                    }
                    match row {
                        Ok(t) => got.push(t),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                match error {
                    // Typed failure: fine — but never a wrong prefix.
                    Some(e) => {
                        assert!(typed(&e), "{cell}: untyped error {e} ({})", e.kind());
                        assert!(
                            got.len() <= baseline[q].rows.len()
                                && got == baseline[q].rows[..got.len()],
                            "{cell}: prefix diverged before the error"
                        );
                    }
                    // Survived: the answer must be exactly right.
                    None => assert_eq!(
                        got, baseline[q].rows,
                        "{cell}: survived with a wrong answer"
                    ),
                }
            }
        }
        perm_fault::clear();
        drop(session);
        assert_drained(&server);
    }
}
