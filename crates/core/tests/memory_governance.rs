//! Memory-governance behavior through the server API: reservation
//! hygiene (the pool always drains back to zero, however a query ends),
//! the typed resource errors, admission queueing, and the `EXPLAIN
//! VERBOSE` memory estimates.

use perm_core::{PermServer, Session, SessionOptions};

/// A server with `big(x int, y int)` holding `n` rows.
fn server_with_rows(n: i64) -> (PermServer, Session) {
    let server = PermServer::new();
    let session = server.session();
    session.execute("CREATE TABLE big (x int, y int)").unwrap();
    {
        let mut w = session.catalog_write();
        let t = w.table_mut("big").unwrap();
        for i in 0..n {
            t.push_raw(perm_core::Tuple::new(vec![
                perm_core::Value::Int(i % 97),
                perm_core::Value::Int(i),
            ]));
        }
    }
    (server, session)
}

// ----------------------------------------------------------------------
// Reservation hygiene: the pool drains to zero on every exit path
// ----------------------------------------------------------------------

#[test]
fn pool_drains_after_stream_dropped_mid_limit() {
    let (server, session) = server_with_rows(2_000);
    let mut stream = session
        .query_stream("SELECT x FROM big ORDER BY x DESC LIMIT 5")
        .unwrap();
    assert!(stream.next().unwrap().is_ok(), "one row pulled");
    drop(stream); // abandon the rest
    let pool = server.memory_pool();
    assert_eq!(pool.used(), 0, "abandoned stream must release everything");
    assert!(pool.peak() > 0, "the sort buffered (and was tracked)");
}

#[test]
fn pool_drains_after_mid_query_error() {
    let (server, session) = server_with_rows(500);
    // The group-key division blows up on x = 7 rows *after* the
    // aggregate charged its input.
    let err = session
        .query("SELECT y / (x - 7) FROM big GROUP BY y / (x - 7)")
        .unwrap_err();
    assert_eq!(err.kind(), "value", "{err}");
    let pool = server.memory_pool();
    assert_eq!(pool.used(), 0, "error unwind must release everything");
    assert!(pool.peak() > 0, "the aggregate charged before the error");
}

#[test]
fn pool_drains_after_parallel_execution() {
    let (server, _) = server_with_rows(3_000);
    let session = server.session_with_options(
        SessionOptions::default()
            .with_max_parallelism(3)
            .with_parallel_row_threshold(1),
    );
    let r = session
        .query("SELECT x, count(*) FROM big GROUP BY x ORDER BY x")
        .unwrap();
    assert_eq!(r.row_count(), 97);
    let pool = server.memory_pool();
    assert_eq!(
        pool.used(),
        0,
        "DOP>1 workers share one drained reservation"
    );
    assert!(pool.peak() > 0);
}

#[test]
fn over_budget_queries_spill_and_still_answer_exactly() {
    let (server, session) = server_with_rows(2_000);
    let sql = "SELECT x, count(*), sum(y) FROM big GROUP BY x ORDER BY x";
    let unconstrained = session.query(sql).unwrap();
    server.set_memory_budget(Some(1));
    let spilled = session.query(sql).unwrap();
    assert_eq!(spilled, unconstrained, "spilling must be invisible");
    assert_eq!(server.memory_pool().used(), 0);
}

// ----------------------------------------------------------------------
// Typed resource errors
// ----------------------------------------------------------------------

#[test]
fn per_query_cap_fails_with_typed_error_naming_operator() {
    // A 16-byte per-query cap cannot even hold the spill working set:
    // the failure is the query's own, and names the operator + budget.
    let (server, _) = server_with_rows(1_000);
    let session = server.session_with_options(SessionOptions::default().with_memory_budget(16));
    let err = session
        .query("SELECT x, count(*) FROM big GROUP BY x")
        .unwrap_err();
    assert_eq!(err.kind(), "resource", "{err}");
    assert!(err.message().contains("HashAggregate"), "{err}");
    assert!(err.message().contains("budget is 16 bytes"), "{err}");
    assert_eq!(server.memory_pool().used(), 0);
}

#[test]
fn full_join_over_budget_fails_with_typed_error() {
    // FULL hash joins are non-spillable by design (spill=never in the
    // plan): pool pressure surfaces the typed error instead of a
    // silent degradation.
    let (server, session) = server_with_rows(200);
    server.set_memory_budget(Some(1));
    let err = session
        .query("SELECT * FROM big b1 FULL OUTER JOIN big b2 ON b1.x = b2.x")
        .unwrap_err();
    assert_eq!(err.kind(), "resource", "{err}");
    assert!(err.message().contains("HashJoin build"), "{err}");
    assert_eq!(server.memory_pool().used(), 0);
}

// ----------------------------------------------------------------------
// Admission control
// ----------------------------------------------------------------------

#[test]
fn streams_hold_their_admission_slot_until_dropped() {
    let (server, _) = server_with_rows(100);
    let session =
        server.session_with_options(SessionOptions::default().with_max_concurrent_queries(1));
    let stream = session.query_stream("SELECT x FROM big").unwrap();
    assert_eq!(server.governor().running(), 1);
    drop(stream);
    assert_eq!(server.governor().running(), 0);
}

#[test]
fn admission_queues_until_the_running_query_finishes() {
    let (server, _) = server_with_rows(100);
    let session = server.session_with_options(
        SessionOptions::default()
            .with_max_concurrent_queries(1)
            .with_admission_timeout_ms(30_000),
    );
    let stream = session.query_stream("SELECT x FROM big").unwrap();
    let s2 = session.clone();
    let waiter = std::thread::spawn(move || s2.query("SELECT count(*) FROM big"));
    while server.governor().waiting() == 0 {
        std::thread::yield_now();
    }
    drop(stream); // frees the slot; the queued query must now run
    let r = waiter.join().unwrap().unwrap();
    assert_eq!(r.row(0)[0], perm_core::Value::Int(100));
    assert_eq!(server.governor().running(), 0);
}

#[test]
fn admission_timeout_yields_typed_error() {
    let (server, _) = server_with_rows(100);
    let session = server.session_with_options(
        SessionOptions::default()
            .with_max_concurrent_queries(1)
            .with_admission_timeout_ms(10),
    );
    let _stream = session.query_stream("SELECT x FROM big").unwrap();
    let err = session.query("SELECT count(*) FROM big").unwrap_err();
    assert_eq!(err.kind(), "resource", "{err}");
    assert!(err.message().contains("admission"), "{err}");
}

#[test]
fn a_lone_over_estimate_query_is_admitted_and_spills() {
    // With nothing else running the governor always admits: a lone
    // too-big query spills rather than queueing forever.
    let (server, session) = server_with_rows(2_000);
    server.set_memory_budget(Some(1));
    let r = session
        .query("SELECT DISTINCT x FROM big ORDER BY x")
        .unwrap();
    assert_eq!(r.row_count(), 97);
    assert_eq!(server.governor().running(), 0);
    assert_eq!(server.memory_pool().used(), 0);
}

#[test]
fn explain_skips_admission() {
    let (server, _) = server_with_rows(100);
    let session = server.session_with_options(
        SessionOptions::default()
            .with_max_concurrent_queries(1)
            .with_admission_timeout_ms(10),
    );
    let _stream = session.query_stream("SELECT x FROM big").unwrap();
    // The slot is taken, but EXPLAIN never executes, so it needs none.
    let r = session.query("EXPLAIN SELECT count(*) FROM big").unwrap();
    assert!(r.row_count() >= 1);
}

// ----------------------------------------------------------------------
// EXPLAIN VERBOSE memory estimates
// ----------------------------------------------------------------------

#[test]
fn explain_verbose_reports_operator_memory_estimates() {
    let (_, session) = server_with_rows(1_000);
    let r = session
        .query(
            "EXPLAIN VERBOSE SELECT b1.x, count(*) FROM big b1, big b2 \
             WHERE b1.x = b2.x GROUP BY b1.x ORDER BY b1.x",
        )
        .unwrap();
    let text = (0..r.row_count())
        .map(|i| r.row(i)[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("est_mem≈"), "{text}");
    assert!(text.contains("[spill="), "{text}");
    // Plain EXPLAIN stays terse.
    let plain = session
        .query("EXPLAIN SELECT x, count(*) FROM big GROUP BY x")
        .unwrap();
    let plain_text = (0..plain.row_count())
        .map(|i| plain.row(i)[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!plain_text.contains("est_mem"), "{plain_text}");
}
