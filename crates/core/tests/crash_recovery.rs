//! Crash-recovery matrix: run a DDL/DML script, kill it at every WAL
//! record boundary and every durability failpoint site, reopen, and
//! assert the recovered catalog equals exactly the committed prefix —
//! zero lost committed statements, zero phantom uncommitted ones, no
//! panics. Unrecoverable corruption must surface as a typed
//! `PermError::Corruption` over a functioning read-only server.
//!
//! The ground truth for "state after the first `n` statements" is a
//! plain in-memory server that applies the same prefix — recovery is
//! correct iff it is indistinguishable from never having crashed.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use perm_core::{DurabilityOptions, FsyncPolicy, PermServer, Session};
use perm_storage::{failpoint, wal, Catalog, Relation, WAL_FILE};

/// One step of the recovery script. `Index` exercises the non-SQL WAL
/// record kind (`CREATE INDEX` has no syntax; it is an API call).
#[derive(Clone, Copy)]
enum Step {
    Sql(&'static str),
    Index(&'static str, &'static str),
}
use Step::{Index, Sql};

/// Every statement kind the WAL records, in one script: table + view DDL,
/// multi-row insert, update, delete, eager provenance materialization,
/// drop, and an index build.
const SCRIPT: &[Step] = &[
    Sql("CREATE TABLE t (x int NOT NULL, y text)"),
    Sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')"),
    Index("t", "x"),
    Sql("CREATE VIEW v AS SELECT x, y FROM t WHERE x > 1"),
    Sql("INSERT INTO t VALUES (3, 'c')"),
    Sql("UPDATE t SET y = 'zz' WHERE x = 2"),
    Sql("CREATE TABLE p AS SELECT PROVENANCE y FROM t"),
    Sql("DELETE FROM t WHERE x = 1"),
    Sql("CREATE TABLE u (k int)"),
    Sql("DROP TABLE u"),
    Sql("INSERT INTO t VALUES (4, 'd')"),
];

fn run_step(session: &Session, step: &Step) -> perm_types::Result<()> {
    match step {
        Sql(sql) => session.execute(sql).map(|_| ()),
        Index(table, column) => session.create_index(table, column),
    }
}

/// Failpoint state is process-global and the test harness is
/// multi-threaded: each test takes this lock and starts from a clean
/// registry.
fn fp_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    failpoint::clear();
    g
}

struct TempDir(PathBuf);
impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("perm-crash-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        failpoint::clear();
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts() -> DurabilityOptions {
    DurabilityOptions::default()
        .with_fsync(FsyncPolicy::Never)
        .with_checkpoint_every(0)
}

/// A canonical, deterministic rendering of a catalog: schemas, rows (in
/// storage order — replay preserves it), index and provenance columns,
/// view definitions. Two catalogs are "the same state" iff dumps match.
fn dump(cat: &Catalog) -> String {
    let mut out = String::new();
    for rel in cat.relations() {
        match rel {
            Relation::Table(t) => {
                out.push_str(&format!(
                    "table {} schema={:?} prov={:?} idx={:?} rows={:?}\n",
                    t.name(),
                    t.schema(),
                    t.provenance_columns(),
                    t.index_columns(),
                    t.rows(),
                ));
            }
            Relation::View(v) => {
                out.push_str(&format!("view {} sql={:?}\n", v.name(), v.sql()));
            }
        }
    }
    out
}

/// State after the first `n` script steps, computed on a plain in-memory
/// server (the never-crashed ground truth).
fn expected_dump(n: usize) -> String {
    let server = PermServer::new();
    let session = server.session();
    for step in &SCRIPT[..n] {
        run_step(&session, step).expect("script prefix applies cleanly in memory");
    }
    dump(&server.snapshot())
}

fn open(dir: &Path) -> PermServer {
    PermServer::open_with(dir, opts()).expect("open never hard-fails on recoverable damage")
}

/// Byte offset where record `i` ends (its commit point) in a scanned log.
fn record_ends(scan: &wal::WalScan) -> Vec<u64> {
    let mut ends: Vec<u64> = scan.records.iter().skip(1).map(|(off, _)| *off).collect();
    ends.push(scan.valid_len);
    ends
}

#[test]
fn kill_at_every_wal_byte_boundary() {
    let _g = fp_lock();
    let full = TempDir::new("boundary-full");
    {
        let server = open(&full.0);
        let session = server.session();
        for step in SCRIPT {
            run_step(&session, step).unwrap();
        }
    }
    let bytes = std::fs::read(full.0.join(WAL_FILE)).unwrap();
    let scan = wal::scan(&bytes);
    assert!(
        matches!(scan.tail, wal::TailState::Clean),
        "{:?}",
        scan.tail
    );
    assert_eq!(scan.records.len(), SCRIPT.len());
    let ends = record_ends(&scan);

    // Cache expected dumps per prefix (the in-memory replay is the
    // expensive part of each iteration).
    let expected: Vec<String> = (0..=SCRIPT.len()).map(expected_dump).collect();

    let crash = TempDir::new("boundary-crash");
    for cut in 0..=bytes.len() as u64 {
        // A crash that persisted exactly `cut` bytes of the log.
        std::fs::create_dir_all(&crash.0).unwrap();
        std::fs::write(crash.0.join(WAL_FILE), &bytes[..cut as usize]).unwrap();

        let committed = ends.iter().filter(|&&e| e <= cut).count();
        let server = open(&crash.0);
        assert!(
            !server.is_read_only(),
            "cut at {cut}: a truncated tail is a torn record, not corruption"
        );
        assert_eq!(
            dump(&server.snapshot()),
            expected[committed],
            "cut at {cut}: recovered state must be the {committed}-statement prefix"
        );
        drop(server);

        // Recovery idempotence: recovering a recovered directory is a
        // no-op (the repaired log replays to the same state).
        let again = open(&crash.0);
        assert_eq!(
            dump(&again.snapshot()),
            expected[committed],
            "cut at {cut}: second recovery diverged"
        );
        drop(again);
        std::fs::remove_dir_all(&crash.0).unwrap();
    }
}

#[test]
fn kill_at_every_append_failpoint_and_statement() {
    let _g = fp_lock();
    // Soft failures (rollback repairs the tail in-process) and hard kills
    // (`wal.rollback=io_err` leaves the torn bytes on disk, like a machine
    // that died mid-write). Either way, reopening must serve exactly the
    // statements that committed before the failure.
    let specs: &[(&str, &str)] = &[
        ("wal.append.write=short_write(0)", ""),
        ("wal.append.write=short_write(6)", ""),
        ("wal.append.write=torn_write(6)", ""),
        ("wal.append.sync=sync_fail", ""),
        ("wal.append.write=short_write(3)", ";wal.rollback=io_err"),
        ("wal.append.write=torn_write(9)", ";wal.rollback=io_err"),
    ];
    let expected: Vec<String> = (0..=SCRIPT.len()).map(expected_dump).collect();

    for (base, extra) in specs {
        for kill_at in 1..=SCRIPT.len() {
            let spec = format!("{base}@{kill_at}{extra}");
            let dir = TempDir::new("fp-append");
            let applied = {
                // Fsync on every commit so the `wal.append.sync` site is
                // actually on the path.
                let server =
                    PermServer::open_with(&dir.0, opts().with_fsync(FsyncPolicy::Always)).unwrap();
                let session = server.session();
                failpoint::configure(&spec).unwrap();
                let mut applied = 0;
                for step in SCRIPT {
                    match run_step(&session, step) {
                        Ok(()) => applied += 1,
                        Err(e) => {
                            assert_eq!(e.kind(), "io", "{spec} @{kill_at}: {e}");
                            break;
                        }
                    }
                }
                assert_eq!(
                    applied,
                    kill_at - 1,
                    "{spec}: failpoint fired on hit {kill_at}"
                );
                // The in-memory catalog never shows the failed statement.
                assert_eq!(
                    dump(&server.snapshot()),
                    expected[applied],
                    "{spec} @{kill_at}"
                );
                failpoint::clear();
                applied
            };
            let server = open(&dir.0);
            assert!(!server.is_read_only(), "{spec} @{kill_at}");
            assert_eq!(
                dump(&server.snapshot()),
                expected[applied],
                "{spec} @{kill_at}: lost or phantom statement after reopen"
            );
            // The recovered server accepts the rest of the script.
            let session = server.session();
            for step in &SCRIPT[applied..] {
                run_step(&session, step).unwrap();
            }
            assert_eq!(
                dump(&server.snapshot()),
                expected[SCRIPT.len()],
                "{spec} @{kill_at}"
            );
        }
    }
}

#[test]
fn checkpoint_failures_never_lose_committed_statements() {
    let _g = fp_lock();
    // Auto-checkpoints fire mid-script (cadence 3). A failure in any
    // checkpoint phase must leave every committed statement recoverable:
    // pre-rename failures keep the old snapshot + full log; post-rename
    // (log reset) failures keep the new snapshot, and epoch
    // reconciliation makes any stale log records harmless.
    let sites: &[&str] = &[
        "checkpoint.write=short_write(10)",
        "checkpoint.write=io_err",
        "checkpoint.sync=sync_fail",
        "checkpoint.rename=io_err",
        "checkpoint.dir_sync=sync_fail",
        "wal.reset=io_err",
        "wal.reset.write=short_write(4)",
        "wal.reset.sync=sync_fail",
    ];
    let full = expected_dump(SCRIPT.len());

    for site in sites {
        let dir = TempDir::new("fp-ckpt");
        let applied = {
            let server = PermServer::open_with(&dir.0, opts().with_checkpoint_every(3)).unwrap();
            let session = server.session();
            // Install after open: a fresh open writes a WAL header through
            // the wal.reset sites itself.
            failpoint::configure(site).unwrap();
            let mut applied = 0;
            for step in SCRIPT {
                match run_step(&session, step) {
                    Ok(()) => applied += 1,
                    // Only a poisoned log (failed reset) refuses commits;
                    // pre-rename checkpoint failures are invisible here.
                    Err(e) => {
                        assert!(e.kind() == "io" || e.kind() == "execution", "{site}: {e}");
                        break;
                    }
                }
            }
            failpoint::clear();
            applied
        };
        let server = open(&dir.0);
        assert!(!server.is_read_only(), "{site}");
        assert_eq!(
            dump(&server.snapshot()),
            expected_dump(applied),
            "{site}: committed prefix lost across a checkpoint failure"
        );
        if applied < SCRIPT.len() {
            let session = server.session();
            for step in &SCRIPT[applied..] {
                run_step(&session, step).unwrap();
            }
            assert_eq!(dump(&server.snapshot()), full, "{site}");
        }
    }
}

#[test]
fn corruption_is_typed_and_leaves_a_working_read_only_server() {
    let _g = fp_lock();
    let dir = TempDir::new("corrupt-matrix");
    {
        let server = open(&dir.0);
        let session = server.session();
        for step in SCRIPT {
            run_step(&session, step).unwrap();
        }
    }
    let wal_path = dir.0.join(WAL_FILE);
    let good = std::fs::read(&wal_path).unwrap();
    let scan = wal::scan(&good);
    let second_record = scan.records[1].0;

    // Flip one payload byte of the *second* record: mid-log corruption.
    let mut bad = good.clone();
    bad[second_record as usize + 8 + 1] ^= 0x01;
    std::fs::write(&wal_path, &bad).unwrap();

    let server = open(&dir.0);
    assert!(server.is_read_only());
    let err = server.recovery_error().expect("typed corruption");
    assert_eq!(err.kind(), "corruption");
    assert!(
        err.message().contains(&format!("offset {second_record}")),
        "error names the damaged offset: {err}"
    );
    // The valid prefix (statement 1) is served read-only; writes fail
    // with the typed error, reads and reopen both keep working.
    assert_eq!(dump(&server.snapshot()), expected_dump(1));
    let session = server.session();
    assert_eq!(
        session.query("SELECT count(*) FROM t").unwrap().row_count(),
        1
    );
    let werr = session
        .execute("INSERT INTO t VALUES (9, 'x')")
        .unwrap_err();
    assert_eq!(werr.kind(), "corruption");
    drop(server);
    let again = open(&dir.0);
    assert!(again.is_read_only(), "corruption does not silently heal");
    assert_eq!(dump(&again.snapshot()), expected_dump(1));
}

#[test]
fn unreplayable_statement_degrades_to_read_only() {
    let _g = fp_lock();
    // A log statement that no longer applies (here: hand-appended SQL that
    // never committed through the server) is corruption, not a panic.
    let dir = TempDir::new("badstmt");
    {
        let server = open(&dir.0);
        let session = server.session();
        session.execute("CREATE TABLE t (x int)").unwrap();
        session.execute("INSERT INTO t VALUES (1)").unwrap();
    }
    // Forge a record that parses but cannot re-apply.
    let wal_path = dir.0.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let sql = b"INSERT INTO nope VALUES (1)";
    let mut payload = vec![0x01u8];
    payload.extend_from_slice(sql);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&wal::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let forged_offset = std::fs::metadata(&wal_path).unwrap().len();
    std::fs::write(&wal_path, &bytes).unwrap();

    let server = open(&dir.0);
    assert!(server.is_read_only());
    let err = server.recovery_error().unwrap();
    assert_eq!(err.kind(), "corruption");
    assert!(
        err.message().contains(&format!("offset {forged_offset}")),
        "{err}"
    );
    // Everything before the unreplayable record is served.
    let session = server.session();
    assert_eq!(session.query("SELECT x FROM t").unwrap().row_count(), 1);
}
