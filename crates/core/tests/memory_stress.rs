//! Many-session stress under a deliberately tiny memory budget: every
//! query must still answer correctly (spilling and queueing, never
//! aborting), the pool must respect its budget at all times, and the
//! accounting must drain back to zero when the storm passes.
//!
//! CI runs this in release mode with `PERM_VERIFY_PLANS=1` (the
//! `memory-stress` job) so the static verifier also re-checks every
//! plan the storm produces.

use perm_core::{PermServer, QueryResult, SessionOptions};

const BUDGET: usize = 64 * 1024;
const THREADS: usize = 8;
const ROUNDS: usize = 5;

fn seeded_server() -> PermServer {
    let server = PermServer::new();
    let session = server.session();
    session
        .run_script("CREATE TABLE facts (k int, v int, tag text);")
        .unwrap();
    {
        let mut w = session.catalog_write();
        let t = w.table_mut("facts").unwrap();
        for i in 0..4_000i64 {
            t.push_raw(perm_core::Tuple::new(vec![
                perm_core::Value::Int(i % 53),
                perm_core::Value::Int(i),
                perm_core::Value::text(format!("tag-{}", i % 7)),
            ]));
        }
    }
    server
}

const QUERIES: &[&str] = &[
    "SELECT k, count(*), sum(v) FROM facts GROUP BY k ORDER BY k",
    "SELECT DISTINCT k FROM facts ORDER BY k",
    "SELECT a.k, count(*) FROM facts a JOIN facts b ON a.v = b.v \
     GROUP BY a.k ORDER BY a.k",
    "SELECT tag, max(v) FROM facts GROUP BY tag ORDER BY tag",
    "SELECT k FROM facts INTERSECT SELECT k + 1 FROM facts ORDER BY k",
];

#[test]
fn concurrent_sessions_under_tiny_budget_never_abort() {
    // Reference answers from a separate, unconstrained server, so the
    // stressed server's pool peak reflects only the storm.
    let baseline: Vec<QueryResult> = {
        let s = seeded_server().session();
        QUERIES.iter().map(|q| s.query(q).unwrap()).collect()
    };

    let server = seeded_server();
    server.set_memory_budget(Some(BUDGET));
    let opts = SessionOptions::default()
        .with_max_concurrent_queries(3)
        .with_admission_timeout_ms(60_000);

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let session = server.session_with_options(opts);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let q = (w + round) % QUERIES.len();
                    let got = session
                        .query(QUERIES[q])
                        .unwrap_or_else(|e| panic!("worker {w} round {round}: {e}"));
                    assert_eq!(got, baseline[q], "worker {w} round {round} diverged");
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }

    let pool = server.memory_pool();
    assert_eq!(pool.used(), 0, "the pool must drain after the storm");
    assert_eq!(server.governor().running(), 0);
    assert_eq!(server.governor().waiting(), 0);
    assert!(
        pool.peak() > 0,
        "the storm must actually have charged memory"
    );
    assert!(
        pool.peak() <= BUDGET,
        "the budget is a hard ceiling: peak {} > {BUDGET}",
        pool.peak()
    );
}

#[test]
fn stream_heavy_storm_releases_all_permits() {
    // Streams that are dropped half-read hold admission permits and
    // (briefly) buffered state; a storm of them must still drain fully.
    let server = seeded_server();
    server.set_memory_budget(Some(BUDGET));
    let opts = SessionOptions::default()
        .with_max_concurrent_queries(2)
        .with_admission_timeout_ms(60_000);

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let session = server.session_with_options(opts);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let mut stream = session
                        .query_stream("SELECT k, v FROM facts ORDER BY v DESC")
                        .unwrap_or_else(|e| panic!("worker {w} round {round}: {e}"));
                    // Pull a prefix, then abandon the stream.
                    for _ in 0..=w + round {
                        if stream.next().is_none() {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }

    assert_eq!(server.memory_pool().used(), 0);
    assert_eq!(server.governor().running(), 0);
}
