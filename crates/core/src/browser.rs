//! The Perm-browser panels (paper Figure 4).
//!
//! The demo client shows, for one query: (1) the query input, (2) the
//! rewritten query as SQL, (3) the algebra tree of the original query,
//! (4) the algebra tree of the rewritten query and (5) the query result.
//! [`BrowserPanels`] produces exactly these five artifacts from the same
//! engine APIs; `examples/perm_browser.rs` wraps them in an interactive
//! terminal client.

use perm_algebra::{deparse, plan_tree, plan_tree_with_schema};
use perm_types::Result;

use crate::db::PermDb;
use crate::pipeline::StageTrace;
use crate::result::QueryResult;
use crate::server::Session;

/// The five Figure 4 panels.
#[derive(Debug, Clone)]
pub struct BrowserPanels {
    /// Marker 1: the query as typed.
    pub input: String,
    /// Marker 2: the rewritten query rendered as SQL.
    pub rewritten_sql: String,
    /// Marker 3: algebra tree of the original query.
    pub original_tree: String,
    /// Marker 4: algebra tree of the rewritten query.
    pub rewritten_tree: String,
    /// Marker 5: the result table.
    pub results: QueryResult,
}

impl BrowserPanels {
    /// Execute `sql` and capture all five panels.
    pub fn capture(db: &mut PermDb, sql: &str) -> Result<BrowserPanels> {
        BrowserPanels::capture_on(db.session(), sql)
    }

    /// Capture the five panels through a server-API [`Session`] (so one
    /// browser per session can run against a shared catalog).
    pub fn capture_on(session: &Session, sql: &str) -> Result<BrowserPanels> {
        let trace = StageTrace::run_on(session, sql)?;
        Ok(BrowserPanels {
            input: sql.to_string(),
            rewritten_sql: deparse(&trace.rewritten_plan),
            original_tree: plan_tree(&trace.original_plan),
            rewritten_tree: plan_tree_with_schema(&trace.rewritten_plan),
            results: trace.result,
        })
    }

    /// Render all panels as text (used by the harness and the example).
    pub fn render(&self) -> String {
        format!(
            "[1] query\n{}\n\n[2] rewritten SQL\n{}\n\n[3] original algebra tree\n{}\n\
             [4] rewritten algebra tree\n{}\n[5] results\n{}",
            self.input,
            self.rewritten_sql,
            self.original_tree,
            self.rewritten_tree,
            self.results.to_table()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{add_figure4_tables, forum_db};
    use perm_types::Value;

    #[test]
    fn figure4_marker5_sample_output() {
        // Figure 4's marker 5 shows:
        //  i | prov_public_s_i | prov_public_r_i
        // ---+-----------------+----------------
        //  1 |               1 |               1
        //  2 |               2 |               2
        let mut db = forum_db();
        add_figure4_tables(&mut db);
        let p = BrowserPanels::capture(&mut db, "SELECT PROVENANCE s.i FROM s JOIN r ON s.i = r.i")
            .unwrap();
        assert_eq!(
            p.results.columns,
            vec!["i", "prov_public_s_i", "prov_public_r_i"]
        );
        let mut rows: Vec<Vec<Value>> =
            p.results.rows.iter().map(|t| t.values().to_vec()).collect();
        rows.sort_by(|a, b| a[0].sort_cmp(&b[0]));
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn all_five_panels_are_populated() {
        let mut db = forum_db();
        let p = BrowserPanels::capture(&mut db, "SELECT PROVENANCE mid FROM messages").unwrap();
        assert!(
            p.rewritten_sql.contains("prov_public_messages_mid"),
            "{}",
            p.rewritten_sql
        );
        assert!(p.original_tree.contains("Scan(messages)"));
        assert!(p.rewritten_tree.contains("Project"));
        assert_eq!(p.results.row_count(), 2);
        let rendered = p.render();
        for marker in ["[1]", "[2]", "[3]", "[4]", "[5]"] {
            assert!(rendered.contains(marker), "{rendered}");
        }
    }

    #[test]
    fn rewritten_sql_is_executable() {
        // Marker 2's point: the rewritten query is ordinary SQL. Running it
        // must reproduce the provenance result.
        let mut db = forum_db();
        let p = BrowserPanels::capture(&mut db, "SELECT PROVENANCE mid FROM messages").unwrap();
        let re_run = db.query(&p.rewritten_sql).unwrap();
        assert_eq!(re_run.row_count(), p.results.row_count());
        assert_eq!(re_run.rows, p.results.rows);
    }
}
