//! Admission control: the server-side gate between "query planned" and
//! "query running".
//!
//! Spilling ([`perm_exec::MemoryPool`]'s fair-spill policy) keeps any
//! *single* admitted query from failing under pool pressure, but it
//! cannot stop a stampede: enough concurrent queries all spilling at
//! once still thrash. The [`ResourceGovernor`] closes that gap the way
//! a real server does — queries whose estimated peak memory does not
//! fit the remaining budget (or that exceed the session's concurrency
//! cap) *queue* instead of starting, and only fail when the bounded
//! queue overflows or their wait times out.
//!
//! Accounting is by planner estimate ([`perm_exec::estimated_peak_bytes`]),
//! not live pool usage: a freshly admitted query has charged nothing
//! yet, so gating on `pool.used()` would admit a burst that the pool
//! then has to absorb all at once. Each [`AdmissionPermit`] holds its
//! query's estimate for the duration of execution (streams keep the
//! permit until the stream drops) and releases it — waking waiters — on
//! drop, error unwind included.
//!
//! A lone query is always admitted, whatever its estimate: with nothing
//! else running, spilling (not queueing) is the right response to a
//! too-big query, and refusing it would deadlock the queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use perm_exec::MemoryPool;
use perm_types::{PermError, QueryContext, Result};

/// Most queries that may wait for admission at once; one more fails
/// immediately instead of queueing.
pub const ADMISSION_QUEUE_BOUND: usize = 64;

#[derive(Debug, Default)]
struct AdmState {
    /// Queries currently admitted (holding a live permit).
    running: usize,
    /// Sum of the running queries' estimated peak bytes.
    admitted_bytes: u64,
    /// Tickets of the queries blocked in [`ResourceGovernor::admit`],
    /// in arrival order. Admission is strictly FIFO — only the head
    /// ticket may be admitted — so a query whose estimate needs the
    /// whole budget cannot be starved by a stream of smaller queries
    /// overtaking it: the pool drains behind it until it fits (a lone
    /// query always fits).
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// The per-server admission gate: the shared [`MemoryPool`] plus the
/// running/queued bookkeeping. One per [`crate::server::PermServer`],
/// shared (via `Arc`) by every session and live stream.
#[derive(Debug, Default)]
pub struct ResourceGovernor {
    pool: MemoryPool,
    state: Mutex<AdmState>,
    waiters: Condvar,
}

/// Mutex poisoning only happens if a thread panicked mid-update; the
/// counters are each updated atomically under the lock, so the state is
/// still consistent and waiters should keep going rather than cascade
/// the panic.
fn lock(state: &Mutex<AdmState>) -> MutexGuard<'_, AdmState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

impl ResourceGovernor {
    /// The server-wide execution memory pool this governor guards.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// Queries currently admitted (for tests and monitoring).
    pub fn running(&self) -> usize {
        lock(&self.state).running
    }

    /// Queries currently waiting for admission.
    pub fn waiting(&self) -> usize {
        lock(&self.state).queue.len()
    }

    fn fits(&self, st: &AdmState, estimate: u64, max_concurrent: usize) -> bool {
        if st.running == 0 {
            return true;
        }
        if max_concurrent > 0 && st.running >= max_concurrent {
            return false;
        }
        match self.pool.budget() {
            Some(budget) => st.admitted_bytes.saturating_add(estimate) <= budget as u64,
            None => true,
        }
    }

    /// Admit a query whose planner-estimated peak is `estimate` bytes,
    /// blocking (up to `timeout`) while the budget or the session's
    /// concurrency cap is saturated. Waiters are served FIFO. Errors are
    /// typed [`PermError::ResourceExhausted`]: immediately when the
    /// admission queue is full, otherwise only after the timeout.
    ///
    /// The wait is cancellable: a query cancelled (or whose stream is
    /// dropped) while still queued has its ticket removed immediately —
    /// waking the waiters behind it — and fails with the typed
    /// cancellation error instead of occupying a queue slot until its
    /// admission timeout.
    pub fn admit(
        self: &Arc<Self>,
        ctx: &QueryContext,
        estimate: u64,
        max_concurrent: usize,
        timeout: Duration,
    ) -> Result<AdmissionPermit> {
        ctx.check()?;
        perm_fault::exec_point("exec.admission.wait", "admission")?;
        let mut st = lock(&self.state);
        // Fast path: nobody queued ahead and the query fits now.
        if !(st.queue.is_empty() && self.fits(&st, estimate, max_concurrent)) {
            if st.queue.len() >= ADMISSION_QUEUE_BOUND {
                return Err(PermError::ResourceExhausted {
                    operator: format!("admission queue ({ADMISSION_QUEUE_BOUND} queries deep)"),
                    requested: estimate,
                    budget: self.pool.budget().unwrap_or(0) as u64,
                });
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(ticket);
            let deadline = Instant::now() + timeout;
            // Condvar wakeups only fire when a permit drops; cancellation
            // can happen at any time, so wait in bounded slices and
            // re-check the context each wakeup.
            const CANCEL_SLICE: Duration = Duration::from_millis(10);
            let admitted = loop {
                if let Err(cancelled) = ctx.check() {
                    st.queue.retain(|t| *t != ticket);
                    drop(st);
                    // The next ticket may be admissible now that this one
                    // stopped blocking the head of the queue.
                    self.waiters.notify_all();
                    return Err(cancelled);
                }
                if st.queue.front() == Some(&ticket) && self.fits(&st, estimate, max_concurrent) {
                    st.queue.pop_front();
                    break true;
                }
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break false;
                };
                let (guard, _) = self
                    .waiters
                    .wait_timeout(st, left.min(CANCEL_SLICE))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            };
            if !admitted {
                st.queue.retain(|t| *t != ticket);
                drop(st);
                // The next ticket may be admissible now that this one
                // stopped blocking the head of the queue.
                self.waiters.notify_all();
                return Err(PermError::ResourceExhausted {
                    operator: format!("admission (timed out after {} ms)", timeout.as_millis()),
                    requested: estimate,
                    budget: self.pool.budget().unwrap_or(0) as u64,
                });
            }
        }
        st.running += 1;
        st.admitted_bytes = st.admitted_bytes.saturating_add(estimate);
        drop(st);
        // Capacity may remain for the (new) head waiter.
        self.waiters.notify_all();
        Ok(AdmissionPermit {
            governor: Arc::clone(self),
            estimate,
        })
    }
}

/// Proof that a query was admitted; holds its estimated peak bytes
/// against the governor until dropped (materialized queries drop it
/// when execution returns, streams when the [`crate::RowStream`]
/// drops).
#[derive(Debug)]
pub struct AdmissionPermit {
    governor: Arc<ResourceGovernor>,
    estimate: u64,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = lock(&self.governor.state);
        st.running -= 1;
        st.admitted_bytes = st.admitted_bytes.saturating_sub(self.estimate);
        drop(st);
        self.governor.waiters.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(budget: Option<usize>) -> Arc<ResourceGovernor> {
        let g = Arc::new(ResourceGovernor::default());
        g.pool().set_budget(budget);
        g
    }

    fn detached() -> QueryContext {
        QueryContext::detached()
    }

    #[test]
    fn unbounded_governor_admits_everything() {
        let g = governor(None);
        let a = g.admit(&detached(), u64::MAX, 0, Duration::ZERO).unwrap();
        let b = g.admit(&detached(), u64::MAX, 0, Duration::ZERO).unwrap();
        assert_eq!(g.running(), 2);
        drop((a, b));
        assert_eq!(g.running(), 0);
    }

    #[test]
    fn lone_query_is_admitted_over_budget() {
        let g = governor(Some(100));
        let big = g.admit(&detached(), 1_000_000, 0, Duration::ZERO).unwrap();
        assert_eq!(g.running(), 1, "running==0 always admits");
        drop(big);
    }

    #[test]
    fn over_budget_follower_times_out_with_typed_error() {
        let g = governor(Some(100));
        let _first = g.admit(&detached(), 80, 0, Duration::ZERO).unwrap();
        let err = g
            .admit(&detached(), 80, 0, Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err.kind(), "resource");
        assert!(err.message().contains("admission"), "{err}");
        assert!(err.message().contains("80 bytes"), "{err}");
        assert_eq!(g.waiting(), 0, "waiter is deregistered after timeout");
    }

    #[test]
    fn concurrency_cap_queues_until_a_permit_frees() {
        let g = governor(None);
        let first = g.admit(&detached(), 0, 1, Duration::ZERO).unwrap();
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || {
            g2.admit(&detached(), 0, 1, Duration::from_secs(30))
                .map(drop)
        });
        while g.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        waiter.join().unwrap().unwrap();
        assert_eq!(g.running(), 0);
    }

    #[test]
    fn released_budget_admits_the_next_query() {
        let g = governor(Some(100));
        let first = g.admit(&detached(), 90, 0, Duration::ZERO).unwrap();
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || {
            g2.admit(&detached(), 90, 0, Duration::from_secs(30))
                .map(drop)
        });
        while g.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        waiter.join().unwrap().unwrap();
    }

    /// Regression (issue 10): a query cancelled while still *queued* —
    /// e.g. its `RowStream` future was dropped, which cancels the
    /// context — must leave the FIFO queue immediately. Before the fix
    /// the dead ticket sat at the head until its admission timeout,
    /// starving every waiter behind it.
    #[test]
    fn cancelled_queued_query_frees_the_slot_for_the_next_waiter() {
        let g = governor(None);
        // Saturate the concurrency cap so followers queue.
        let first = g.admit(&detached(), 0, 1, Duration::ZERO).unwrap();

        // Head-of-queue waiter that gets cancelled while queued.
        let cancelled_ctx = QueryContext::new(1, None, None);
        let handle = cancelled_ctx.handle();
        let g2 = Arc::clone(&g);
        let doomed = std::thread::spawn(move || {
            g2.admit(&cancelled_ctx, 0, 1, Duration::from_secs(30))
                .map(drop)
        });
        while g.waiting() == 0 {
            std::thread::yield_now();
        }

        // Second waiter, behind the doomed one in FIFO order.
        let g3 = Arc::clone(&g);
        let next = std::thread::spawn(move || {
            g3.admit(&detached(), 0, 1, Duration::from_secs(30))
                .map(drop)
        });
        while g.waiting() < 2 {
            std::thread::yield_now();
        }

        // Cancel the head waiter: it must fail typed and leave the queue
        // without waiting out its 30s admission timeout.
        handle.cancel();
        let err = doomed.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        while g.waiting() > 1 {
            std::thread::yield_now();
        }

        // With the dead ticket gone, releasing the running permit admits
        // the surviving waiter promptly.
        drop(first);
        next.join().unwrap().unwrap();
        assert_eq!(g.running(), 0);
        assert_eq!(g.waiting(), 0, "no ghost tickets left behind");
    }
}
