//! Lazy vs. eager provenance computation (paper §1: the user can "decide
//! whether he will store the provenance of a query for later reuse or let
//! the system compute it on the fly").
//!
//! *Lazy* is the default: every `SELECT PROVENANCE` recomputes `q+`.
//! *Eager* materializes `q+` once —
//! `CREATE TABLE p AS SELECT PROVENANCE …` — and records which columns of
//! `p` are provenance attributes in the catalog. A later
//! `SELECT PROVENANCE … FROM p` then treats those columns as **external
//! provenance** and propagates them without any re-derivation: the
//! incremental computation path.

use perm_types::Result;

use crate::db::PermDb;
use crate::result::StatementResult;
use crate::server::Session;

/// Materialize the provenance of `query` into table `name`.
///
/// Equivalent to executing `CREATE TABLE <name> AS SELECT PROVENANCE …`,
/// returning the number of materialized rows.
pub fn materialize_provenance(
    db: &mut PermDb,
    name: &str,
    provenance_query: &str,
) -> Result<usize> {
    materialize_provenance_on(db.session(), name, provenance_query)
}

/// [`materialize_provenance`] through a server-API [`Session`]; the
/// materialization takes the catalog write lock like any other DDL.
pub fn materialize_provenance_on(
    session: &Session,
    name: &str,
    provenance_query: &str,
) -> Result<usize> {
    let sql = format!("CREATE TABLE {name} AS {provenance_query}");
    match session.execute(&sql)? {
        StatementResult::TableCreated { rows, .. } => Ok(rows),
        other => unreachable!("CREATE TABLE AS returned {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::forum_db;
    use perm_rewrite::is_provenance_name;

    #[test]
    fn eager_table_records_provenance_columns() {
        let mut db = forum_db();
        let n = materialize_provenance(
            &mut db,
            "msg_prov",
            "SELECT PROVENANCE mid, text FROM messages",
        )
        .unwrap();
        assert_eq!(n, 2);
        let catalog = db.catalog();
        let t = catalog.table("msg_prov").unwrap();
        assert_eq!(t.provenance_columns(), &[2, 3, 4]);
        for &c in t.provenance_columns() {
            assert!(is_provenance_name(&t.schema().column(c).name));
        }
    }

    #[test]
    fn provenance_query_over_eager_table_propagates_not_recomputes() {
        let mut db = forum_db();
        materialize_provenance(
            &mut db,
            "msg_prov",
            "SELECT PROVENANCE mid, text FROM messages",
        )
        .unwrap();
        // Lazy: recompute from the base table.
        let lazy = db
            .query("SELECT PROVENANCE mid, text FROM messages")
            .unwrap();
        // Eager reuse: read the stored provenance. The recorded provenance
        // columns are propagated untouched — no prov_public_msg_prov_*
        // duplication.
        let eager = db
            .query("SELECT PROVENANCE mid, text FROM msg_prov")
            .unwrap();
        assert_eq!(eager.columns, lazy.columns);
        let sort = |r: &crate::result::QueryResult| {
            let mut v: Vec<_> = r.rows.clone();
            v.sort_by(|a, b| a.get(0).sort_cmp(b.get(0)));
            v
        };
        assert_eq!(sort(&eager), sort(&lazy));
    }

    #[test]
    fn eager_provenance_survives_base_table_updates() {
        // The materialized provenance is a snapshot: updating the base
        // table afterwards does not change it (that is the point of
        // storing it).
        let mut db = forum_db();
        materialize_provenance(&mut db, "p", "SELECT PROVENANCE mid FROM messages").unwrap();
        db.execute("INSERT INTO messages VALUES (9, 'new', 1)")
            .unwrap();
        let stored = db.query("SELECT * FROM p").unwrap();
        assert_eq!(stored.row_count(), 2, "snapshot unchanged");
        let lazy = db.query("SELECT PROVENANCE mid FROM messages").unwrap();
        assert_eq!(lazy.row_count(), 3, "lazy sees the new row");
    }

    #[test]
    fn plain_queries_over_eager_tables_see_all_columns() {
        let mut db = forum_db();
        materialize_provenance(&mut db, "p", "SELECT PROVENANCE mid FROM messages").unwrap();
        // Without PROVENANCE, p behaves like any table: provenance columns
        // are ordinary, queryable columns (paper §2.4's "query provenance
        // information" requirement).
        let r = db
            .query("SELECT prov_public_messages_text FROM p WHERE mid = 4")
            .unwrap();
        assert_eq!(r.row(0), &[perm_types::Value::text("hi there ...")]);
    }
}
