//! AST → SQL serialization.
//!
//! Renders a parsed (and possibly transformed) [`Query`] back to SQL text.
//! Used by the stage trace to re-analyze the provenance-stripped original
//! query, and generally handy for tooling. The output always re-parses to
//! an equal AST (see the round-trip tests).

use perm_sql::{
    ContributionSemantics, CopyMode, Expr, JoinKind, ObjectKind, Query, QueryBody, Select,
    SelectItem, SetOpKind, Statement, TableRef,
};
use perm_types::Value;

/// Render a statement as SQL. This is what the write-ahead log records:
/// a committed DDL/DML statement is deparsed here and re-parsed through
/// the full pipeline on recovery, so the output must re-parse to an equal
/// AST (see the round-trip tests).
pub fn statement_to_sql(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => query_to_sql(q),
        Statement::CreateTable { name, columns } => {
            let cols: Vec<String> = columns
                .iter()
                .map(|c| {
                    format!(
                        "{} {}{}",
                        c.name,
                        c.ty,
                        if c.not_null { " NOT NULL" } else { "" }
                    )
                })
                .collect();
            format!("CREATE TABLE {name} ({})", cols.join(", "))
        }
        Statement::CreateTableAs { name, query } => {
            format!("CREATE TABLE {name} AS {}", query_to_sql(query))
        }
        Statement::CreateView { name, query } => {
            format!("CREATE VIEW {name} AS {}", query_to_sql(query))
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let cols = match columns {
                Some(cs) => format!(" ({})", cs.join(", ")),
                None => String::new(),
            };
            let tuples: Vec<String> = rows
                .iter()
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(expr_to_sql).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {table}{cols} VALUES {}", tuples.join(", "))
        }
        Statement::Delete { table, predicate } => match predicate {
            Some(p) => format!("DELETE FROM {table} WHERE {}", expr_to_sql(p)),
            None => format!("DELETE FROM {table}"),
        },
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            let sets: Vec<String> = assignments
                .iter()
                .map(|(col, e)| format!("{col} = {}", expr_to_sql(e)))
                .collect();
            let mut s = format!("UPDATE {table} SET {}", sets.join(", "));
            if let Some(p) = predicate {
                s.push_str(&format!(" WHERE {}", expr_to_sql(p)));
            }
            s
        }
        Statement::Drop {
            kind,
            name,
            if_exists,
        } => format!(
            "DROP {} {}{name}",
            match kind {
                ObjectKind::Table => "TABLE",
                ObjectKind::View => "VIEW",
            },
            if *if_exists { "IF EXISTS " } else { "" }
        ),
        Statement::Explain {
            query,
            verbose,
            verify,
        } => format!(
            "EXPLAIN {}{}{}",
            if *verify { "VERIFY " } else { "" },
            if *verbose { "VERBOSE " } else { "" },
            query_to_sql(query)
        ),
    }
}

/// Render a query as SQL.
pub fn query_to_sql(q: &Query) -> String {
    let mut s = body_to_sql(&q.body);
    if !q.order_by.is_empty() {
        let items: Vec<String> = q
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{}{}",
                    expr_to_sql(&o.expr),
                    if o.desc { " DESC" } else { "" }
                )
            })
            .collect();
        s.push_str(&format!(" ORDER BY {}", items.join(", ")));
    }
    if let Some(l) = q.limit {
        s.push_str(&format!(" LIMIT {l}"));
    }
    if let Some(o) = q.offset {
        s.push_str(&format!(" OFFSET {o}"));
    }
    s
}

fn body_to_sql(b: &QueryBody) -> String {
    match b {
        QueryBody::Select(s) => select_to_sql(s),
        QueryBody::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let kw = match op {
                SetOpKind::Union => "UNION",
                SetOpKind::Intersect => "INTERSECT",
                SetOpKind::Except => "EXCEPT",
            };
            format!(
                "({}) {kw}{} ({})",
                body_to_sql(left),
                if *all { " ALL" } else { "" },
                body_to_sql(right)
            )
        }
    }
}

fn select_to_sql(s: &Select) -> String {
    let mut out = String::from("SELECT ");
    if let Some(p) = &s.provenance {
        out.push_str("PROVENANCE ");
        if let Some(sem) = p.semantics {
            let kw = match sem {
                ContributionSemantics::Influence => "INFLUENCE".to_string(),
                ContributionSemantics::Lineage => "LINEAGE".to_string(),
                ContributionSemantics::Copy(CopyMode::Partial) => "COPY PARTIAL".to_string(),
                ContributionSemantics::Copy(CopyMode::Complete) => "COPY COMPLETE".to_string(),
            };
            out.push_str(&format!("ON CONTRIBUTION ({kw}) "));
        }
    }
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = s.items.iter().map(item_to_sql).collect();
    out.push_str(&items.join(", "));
    if !s.from.is_empty() {
        let froms: Vec<String> = s.from.iter().map(table_ref_to_sql).collect();
        out.push_str(&format!(" FROM {}", froms.join(", ")));
    }
    if let Some(w) = &s.where_clause {
        out.push_str(&format!(" WHERE {}", expr_to_sql(w)));
    }
    if !s.group_by.is_empty() {
        let gs: Vec<String> = s.group_by.iter().map(expr_to_sql).collect();
        out.push_str(&format!(" GROUP BY {}", gs.join(", ")));
    }
    if let Some(h) = &s.having {
        out.push_str(&format!(" HAVING {}", expr_to_sql(h)));
    }
    out
}

fn item_to_sql(i: &SelectItem) -> String {
    match i {
        SelectItem::Wildcard => "*".into(),
        SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", expr_to_sql(expr)),
            None => expr_to_sql(expr),
        },
    }
}

fn table_ref_to_sql(t: &TableRef) -> String {
    match t {
        TableRef::Relation {
            name,
            alias,
            column_aliases,
            modifiers,
        } => {
            let mut s = name.clone();
            if let Some(a) = alias {
                s.push_str(&format!(" AS {a}"));
            }
            if let Some(cols) = column_aliases {
                s.push_str(&format!("({})", cols.join(", ")));
            }
            s.push_str(&modifiers_to_sql(modifiers));
            s
        }
        TableRef::Subquery {
            query,
            alias,
            column_aliases,
            modifiers,
        } => {
            let mut s = format!("({}) AS {alias}", query_to_sql(query));
            if let Some(cols) = column_aliases {
                s.push_str(&format!("({})", cols.join(", ")));
            }
            s.push_str(&modifiers_to_sql(modifiers));
            s
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let kw = match kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Right => "RIGHT JOIN",
                JoinKind::Full => "FULL JOIN",
                JoinKind::Cross => "CROSS JOIN",
            };
            // Nested join operands are parenthesized so associativity and
            // the binding of ON clauses survive the round trip.
            let operand = |t: &TableRef| -> String {
                let s = table_ref_to_sql(t);
                if matches!(t, TableRef::Join { .. }) {
                    format!("({s})")
                } else {
                    s
                }
            };
            let mut s = format!("{} {kw} {}", operand(left), operand(right));
            if let Some(c) = on {
                s.push_str(&format!(" ON {}", expr_to_sql(c)));
            }
            s
        }
    }
}

fn modifiers_to_sql(m: &perm_sql::FromModifiers) -> String {
    let mut s = String::new();
    if let Some(attrs) = &m.provenance_attrs {
        s.push_str(&format!(" PROVENANCE ({})", attrs.join(", ")));
    }
    if m.baserelation {
        s.push_str(" BASERELATION");
    }
    s
}

/// Render an AST expression as SQL.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => match v {
            Value::Null => "NULL".into(),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => b.to_string().to_uppercase(),
            other => other.to_string(),
        },
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => {
            use perm_sql::BinaryOp::*;
            let o = match op {
                Eq => "=",
                NotEq => "<>",
                Lt => "<",
                LtEq => "<=",
                Gt => ">",
                GtEq => ">=",
                And => "AND",
                Or => "OR",
                Add => "+",
                Sub => "-",
                Mul => "*",
                Div => "/",
                Mod => "%",
                Concat => "||",
            };
            format!("({} {o} {})", expr_to_sql(left), expr_to_sql(right))
        }
        Expr::Unary { op, expr } => match op {
            perm_sql::UnaryOp::Not => format!("(NOT {})", expr_to_sql(expr)),
            perm_sql::UnaryOp::Neg => format!("(-{})", expr_to_sql(expr)),
            perm_sql::UnaryOp::Plus => expr_to_sql(expr),
        },
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::IsDistinctFrom {
            left,
            right,
            negated,
        } => format!(
            "({} IS {}DISTINCT FROM {})",
            expr_to_sql(left),
            if *negated { "" } else { "NOT " },
            expr_to_sql(right)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(pattern)
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(low),
            expr_to_sql(high)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(expr_to_sql).collect();
            format!(
                "({} {}IN ({}))",
                expr_to_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => format!(
            "({} {}IN ({}))",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            query_to_sql(query)
        ),
        Expr::Exists { query, negated } => format!(
            "({}EXISTS ({}))",
            if *negated { "NOT " } else { "" },
            query_to_sql(query)
        ),
        Expr::ScalarSubquery(q) => format!("({})", query_to_sql(q)),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                s.push_str(&format!(" {}", expr_to_sql(o)));
            }
            for (c, r) in branches {
                s.push_str(&format!(" WHEN {} THEN {}", expr_to_sql(c), expr_to_sql(r)));
            }
            if let Some(el) = else_branch {
                s.push_str(&format!(" ELSE {}", expr_to_sql(el)));
            }
            s.push_str(" END");
            s
        }
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            if *star {
                return format!("{name}(*)");
            }
            let rendered: Vec<String> = args.iter().map(expr_to_sql).collect();
            format!(
                "{name}({}{})",
                if *distinct { "DISTINCT " } else { "" },
                rendered.join(", ")
            )
        }
        Expr::Cast { expr, ty } => format!("CAST({} AS {ty})", expr_to_sql(expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_sql::{parse_statement, Statement};

    fn roundtrip(sql: &str) {
        let q1 = match parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            _ => panic!("query expected"),
        };
        let rendered = query_to_sql(&q1);
        let q2 = match parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("rendered SQL does not re-parse: {rendered}\n{e}"))
        {
            Statement::Query(q) => q,
            _ => panic!("query expected"),
        };
        assert_eq!(
            q1, q2,
            "round-trip changed the AST for {sql:?}:\n{rendered}"
        );
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT 1",
            "SELECT DISTINCT a, b AS c FROM t WHERE x > 1 GROUP BY a, b HAVING count(*) > 2",
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
            "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports",
            "SELECT * FROM t ORDER BY 1 DESC LIMIT 3 OFFSET 1",
            "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t",
            "SELECT * FROM t WHERE x IN (SELECT y FROM u) AND EXISTS (SELECT 1 FROM v)",
            "SELECT * FROM t WHERE x BETWEEN 1 AND 2 OR name LIKE 'a%'",
            "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text \
             FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId",
            "SELECT PROVENANCE text FROM v1 BASERELATION WHERE mid > 3",
            "SELECT PROVENANCE * FROM imported PROVENANCE (src_id, src_origin)",
            "SELECT CAST(x AS int), -y, NOT z, a IS NOT DISTINCT FROM b FROM t",
            "SELECT sum(DISTINCT x) FROM t",
            "SELECT (SELECT max(x) FROM u) FROM t WHERE y IS NOT NULL",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn statement_roundtrips() {
        for sql in [
            "CREATE TABLE t (a int NOT NULL, b text, c float, d bool)",
            "CREATE TABLE p AS SELECT PROVENANCE text FROM messages",
            "CREATE VIEW v AS SELECT a, b FROM t WHERE a > 1",
            "INSERT INTO t VALUES (1, 'x', 2.5, TRUE), (2, NULL, 3.0, FALSE)",
            "INSERT INTO t (a, b) VALUES (1, 'it''s')",
            "DELETE FROM t",
            "DELETE FROM t WHERE a = 1 AND b IS NOT NULL",
            "UPDATE t SET a = a + 1, b = 'y' WHERE a < 10",
            "DROP TABLE t",
            "DROP VIEW IF EXISTS v",
            "EXPLAIN SELECT 1",
            "EXPLAIN VERIFY VERBOSE SELECT a FROM t",
        ] {
            let s1 = parse_statement(sql).unwrap();
            let rendered = statement_to_sql(&s1);
            let s2 = parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("rendered SQL does not re-parse: {rendered}\n{e}"));
            assert_eq!(
                s1, s2,
                "round-trip changed the AST for {sql:?}:\n{rendered}"
            );
        }
    }

    #[test]
    fn strings_escape() {
        let q = match parse_statement("SELECT 'it''s'").unwrap() {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(query_to_sql(&q).contains("'it''s'"));
    }
}
