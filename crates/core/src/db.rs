//! `PermDb`: the single-session convenience facade — one server, one
//! session, the end-to-end Perm pipeline of the paper's Figure 3
//! (parse → analyze (view unfolding) → provenance rewrite → plan →
//! execute).
//!
//! `PermDb` is now a thin shim over [`PermServer`] + one [`Session`]; it
//! keeps the original embedded-database API (including `&mut self`
//! receivers) stable for tests, examples and benches. New code that wants
//! concurrency, prepared statements or streaming results should use
//! [`PermServer`] directly — see [`crate::server`] and the README's
//! "Embedding Perm" section for a migration note.

use std::sync::Arc;

use perm_algebra::LogicalPlan;
use perm_rewrite::CardinalityEstimator;
use perm_storage::{Catalog, CatalogWriteGuard};
use perm_types::{Result, Schema, Tuple};

use crate::options::SessionOptions;
use crate::result::{QueryResult, RowStream, StatementResult};
use crate::server::{PermServer, Prepared, Session};

/// A single-session Perm database: an in-memory catalog plus the session
/// options controlling the provenance rewriter.
pub struct PermDb {
    session: Session,
}

/// Exposes exact table statistics to the pipeline's unified estimator —
/// the rewriter's cost-based strategy chooser and the executor's physical
/// planner both read it. Delegates to [`perm_exec::CatalogStats`].
pub struct CatalogCardinalities<'a>(pub &'a Catalog);

impl CardinalityEstimator for CatalogCardinalities<'_> {
    fn table_rows(&self, table: &str) -> Option<f64> {
        perm_exec::CatalogStats(self.0).table_rows(table)
    }

    fn column_distinct(&self, table: &str, column: usize) -> Option<f64> {
        perm_exec::CatalogStats(self.0).column_distinct(table, column)
    }

    fn has_index(&self, table: &str, column: usize) -> bool {
        perm_exec::CatalogStats(self.0).has_index(table, column)
    }
}

impl Default for PermDb {
    fn default() -> PermDb {
        PermDb::new()
    }
}

impl PermDb {
    /// An empty database with default options.
    pub fn new() -> PermDb {
        PermDb {
            session: PermServer::new().session(),
        }
    }

    /// An empty database with explicit session options.
    pub fn with_options(options: SessionOptions) -> PermDb {
        PermDb {
            session: PermServer::new().session_with_options(options),
        }
    }

    /// The underlying session (shareable with the server API).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The server this database's catalog belongs to: hand out more
    /// sessions with [`PermServer::session`] to query the same catalog
    /// concurrently.
    pub fn server(&self) -> PermServer {
        self.session.server()
    }

    pub fn options(&self) -> &SessionOptions {
        self.session.options()
    }

    /// Change the session options (the browser's strategy / semantics
    /// toggles).
    pub fn set_options(&mut self, options: SessionOptions) {
        self.session.set_options(options);
    }

    /// A consistent snapshot of the catalog (read-only access).
    ///
    /// The snapshot does not observe writes made after this call; re-call
    /// for fresh state.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.session.snapshot()
    }

    /// Exclusive catalog write access (index creation, direct table
    /// loads). The guard dereferences to [`Catalog`].
    pub fn catalog_mut(&mut self) -> CatalogWriteGuard<'_> {
        self.session.catalog_write()
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Execute one SQL / SQL-PLE statement.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult> {
        self.session.execute(sql)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    /// On failure the error names the 1-based statement that died.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        self.session.run_script(sql)
    }

    /// Convenience: execute a query and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        self.session.query(sql)
    }

    /// Execute a query cursor-style (see [`Session::query_stream`]).
    pub fn query_stream(&self, sql: &str) -> Result<RowStream> {
        self.session.query_stream(sql)
    }

    /// Prepare a query for repeated execution (see [`Session::prepare`]).
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        self.session.prepare(sql)
    }

    // ------------------------------------------------------------------
    // Pipeline stages (also used by the stage trace / browser)
    // ------------------------------------------------------------------

    /// Parse + analyze (+ provenance-rewrite when requested): the bound
    /// plan, pre-optimization.
    pub fn bind_sql(&self, sql: &str) -> Result<LogicalPlan> {
        self.session.bind_sql(sql)
    }

    /// Optimize and execute a bound plan.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<(Schema, Vec<Tuple>)> {
        self.session.run_plan(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::Value;

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int NOT NULL, y text)")
            .unwrap();
        let r = db
            .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(r, StatementResult::Inserted(2));
        let rows = db.query("SELECT x, y FROM t ORDER BY x DESC").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(2), Value::text("b")]);
    }

    #[test]
    fn insert_with_expression_values() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("INSERT INTO t VALUES (1 + 2 * 3)").unwrap();
        let rows = db.query("SELECT x FROM t").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(7)]);
    }

    #[test]
    fn create_table_as_materializes() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let r = db
            .execute("CREATE TABLE big AS SELECT x * 10 AS x10 FROM t WHERE x > 1")
            .unwrap();
        assert_eq!(
            r,
            StatementResult::TableCreated {
                name: "big".into(),
                rows: 2
            }
        );
        let rows = db.query("SELECT x10 FROM big ORDER BY x10").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(20)]);
    }

    #[test]
    fn views_create_and_drop() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("CREATE VIEW v AS SELECT x FROM t").unwrap();
        assert!(db.query("SELECT * FROM v").unwrap().is_empty());
        assert_eq!(
            db.execute("DROP VIEW v").unwrap(),
            StatementResult::Dropped(true)
        );
        assert!(db.execute("SELECT * FROM v").is_err());
        assert_eq!(
            db.execute("DROP TABLE IF EXISTS nope").unwrap(),
            StatementResult::Dropped(false)
        );
    }

    #[test]
    fn explain_returns_the_physical_plan() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        let r = db.execute("EXPLAIN SELECT x FROM t WHERE x > 1").unwrap();
        match r {
            StatementResult::Explain(tree) => {
                assert!(tree.contains("FusedScan(t)"), "{tree}");
                assert!(tree.contains("filter=(#0 > 1)"), "{tree}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_verbose_shows_logical_and_physical_trees() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        let r = db
            .execute("EXPLAIN VERBOSE SELECT x FROM t WHERE x > 1")
            .unwrap();
        match r {
            StatementResult::Explain(text) => {
                assert!(text.contains("== logical (optimized) =="), "{text}");
                assert!(text.contains("== physical =="), "{text}");
                assert!(text.contains("Scan(t)"), "{text}");
                assert!(text.contains("(t.x: int)"), "schema annotations: {text}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_and_update_statements_execute() {
        let mut db = PermDb::new();
        db.run_script(
            "CREATE TABLE t (x int NOT NULL, y text);
             INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd');",
        )
        .unwrap();
        assert_eq!(
            db.execute("DELETE FROM t WHERE x % 2 = 0").unwrap(),
            StatementResult::Deleted(2)
        );
        assert_eq!(
            db.execute("UPDATE t SET y = y || '!' WHERE x = 3").unwrap(),
            StatementResult::Updated(1)
        );
        let rows = db.query("SELECT x, y FROM t ORDER BY x").unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.row(1), &[Value::Int(3), Value::text("c!")]);
        // Unconditional DELETE empties the table.
        assert_eq!(
            db.execute("DELETE FROM t").unwrap(),
            StatementResult::Deleted(2)
        );
        assert!(db.query("SELECT * FROM t").unwrap().is_empty());
    }

    #[test]
    fn dml_keeps_planner_statistics_fresh() {
        // The cost model reads Table::stats through the unified
        // estimator; DELETE/UPDATE must invalidate the cache so a plan
        // built after the DML sees the new row counts.
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let snap = db.catalog();
        assert_eq!(snap.table("t").unwrap().stats().row_count, 50);
        db.execute("DELETE FROM t WHERE x >= 10").unwrap();
        let snap = db.catalog();
        assert_eq!(snap.table("t").unwrap().stats().row_count, 10);
        db.execute("UPDATE t SET x = 0 WHERE x < 5").unwrap();
        let snap = db.catalog();
        let stats = snap.table("t").unwrap().stats();
        assert_eq!(stats.row_count, 10);
        assert_eq!(stats.columns[0].n_distinct, 6, "0 and 5..9");
    }

    #[test]
    fn query_on_ddl_is_an_error() {
        let mut db = PermDb::new();
        assert!(db.query("CREATE TABLE t (x int)").is_err());
    }

    #[test]
    fn run_script_executes_in_order() {
        let mut db = PermDb::new();
        let results = db
            .run_script("CREATE TABLE t (x int); INSERT INTO t VALUES (5); SELECT x FROM t;")
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].clone().expect_rows().row(0), &[Value::Int(5)]);
    }

    #[test]
    fn run_script_errors_name_the_statement() {
        let mut db = PermDb::new();
        let err = db
            .run_script("CREATE TABLE t (x int); SELECT nope FROM t;")
            .unwrap_err();
        assert!(err.message().contains("script statement 2 of 2"), "{err}");
    }

    #[test]
    fn parse_errors_surface() {
        let mut db = PermDb::new();
        let err = db.execute("SELEC 1").unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn catalog_mut_guard_allows_direct_loads() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.catalog_mut()
            .table_mut("t")
            .unwrap()
            .insert(Tuple::new(vec![Value::Int(7)]))
            .unwrap();
        assert_eq!(db.query("SELECT x FROM t").unwrap().row_count(), 1);
    }
}
