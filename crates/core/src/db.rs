//! `PermDb`: the end-to-end Perm pipeline of the paper's Figure 3 —
//! parse → analyze (view unfolding) → provenance rewrite → plan → execute.

use perm_algebra::{bind_statement, BoundStatement, LogicalPlan};
use perm_exec::{optimize, CatalogAdapter, Executor};
use perm_rewrite::{CardinalityEstimator, Rewriter};
use perm_sql::{parse_statement, parse_statements, ObjectKind, Statement};
use perm_storage::{Catalog, Table};
use perm_types::{Column, PermError, Result, Schema, Tuple};

use crate::options::SessionOptions;
use crate::result::{QueryResult, StatementResult};

/// A Perm database session: an in-memory catalog plus the session options
/// controlling the provenance rewriter.
#[derive(Default)]
pub struct PermDb {
    catalog: Catalog,
    options: SessionOptions,
}

/// Exposes exact table row counts to the rewriter's cost-based strategy
/// chooser.
pub struct CatalogCardinalities<'a>(pub &'a Catalog);

impl CardinalityEstimator for CatalogCardinalities<'_> {
    fn table_rows(&self, table: &str) -> Option<f64> {
        self.0.table(table).ok().map(|t| t.row_count() as f64)
    }
}

impl PermDb {
    /// An empty database with default options.
    pub fn new() -> PermDb {
        PermDb::default()
    }

    /// An empty database with explicit session options.
    pub fn with_options(options: SessionOptions) -> PermDb {
        PermDb {
            catalog: Catalog::new(),
            options,
        }
    }

    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Change the session options (the browser's strategy / semantics
    /// toggles).
    pub fn set_options(&mut self, options: SessionOptions) {
        self.options = options;
    }

    /// Read-only access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (index creation, direct table loads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Execute one SQL / SQL-PLE statement.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = parse_statements(sql)?;
        stmts.iter().map(|s| self.execute_statement(s)).collect()
    }

    /// Convenience: execute a query and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        match self.execute(sql)? {
            StatementResult::Rows(r) => Ok(r),
            other => Err(PermError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    fn execute_statement(&mut self, stmt: &Statement) -> Result<StatementResult> {
        let bound = self.bind(stmt)?;
        match bound {
            BoundStatement::Query(plan) => {
                let (schema, rows) = self.run_plan(plan)?;
                Ok(StatementResult::Rows(QueryResult::new(&schema, rows)))
            }
            BoundStatement::Explain(plan) => {
                let optimized = optimize(plan);
                Ok(StatementResult::Explain(perm_algebra::plan_tree(
                    &optimized,
                )))
            }
            BoundStatement::CreateTable { name, schema } => {
                self.catalog
                    .create_table(Table::new(name.clone(), schema))?;
                Ok(StatementResult::TableCreated { name, rows: 0 })
            }
            BoundStatement::CreateTableAs {
                name,
                plan,
                provenance_attrs,
            } => {
                let (schema, rows) = self.run_plan(plan)?;
                // Stored column set loses the source qualifiers.
                let columns: Vec<Column> = schema
                    .iter()
                    .map(|c| {
                        let mut c = c.clone();
                        c.qualifier = None;
                        c
                    })
                    .collect();
                let mut table = Table::new(name.clone(), Schema::new(columns));
                // Eager provenance: remember which columns are provenance so
                // later provenance queries over this table propagate them
                // as external provenance (paper §1: "store the provenance
                // of a query for later reuse").
                if let Some(attrs) = provenance_attrs {
                    table.set_provenance_columns(attrs)?;
                }
                let n = rows.len();
                for r in rows {
                    table.push_raw(r);
                }
                self.catalog.create_table(table)?;
                Ok(StatementResult::TableCreated { name, rows: n })
            }
            BoundStatement::CreateView { name, definition } => {
                self.catalog.create_view(name.clone(), definition)?;
                Ok(StatementResult::ViewCreated { name })
            }
            BoundStatement::Insert { table, rows } => {
                // Evaluate the bound row expressions (no input tuple).
                let tuples: Vec<Tuple> = {
                    let executor = Executor::new(&self.catalog);
                    let empty = Tuple::empty();
                    rows.iter()
                        .map(|row| {
                            let env = perm_exec::eval::Env::new(&empty, &[]);
                            let vals = row
                                .iter()
                                .map(|e| perm_exec::eval::eval(&executor, e, &env))
                                .collect::<Result<Vec<_>>>()?;
                            Ok(Tuple::new(vals))
                        })
                        .collect::<Result<_>>()?
                };
                let t = self.catalog.table_mut(&table)?;
                let n = t.insert_all(tuples)?;
                Ok(StatementResult::Inserted(n))
            }
            BoundStatement::Drop {
                kind,
                name,
                if_exists,
            } => {
                let dropped = match kind {
                    ObjectKind::Table => self.catalog.drop_table(&name, if_exists)?,
                    ObjectKind::View => self.catalog.drop_view(&name, if_exists)?,
                };
                Ok(StatementResult::Dropped(dropped))
            }
        }
    }

    // ------------------------------------------------------------------
    // Pipeline stages (also used by the stage trace / browser)
    // ------------------------------------------------------------------

    /// Parse + analyze (+ provenance-rewrite when requested): the bound
    /// plan, pre-optimization.
    pub fn bind_sql(&self, sql: &str) -> Result<LogicalPlan> {
        let stmt = parse_statement(sql)?;
        match self.bind(&stmt)? {
            BoundStatement::Query(p) | BoundStatement::Explain(p) => Ok(p),
            other => Err(PermError::Analysis(format!(
                "expected a query, got {other:?}"
            ))),
        }
    }

    fn bind(&self, stmt: &Statement) -> Result<BoundStatement> {
        let estimator = CatalogCardinalities(&self.catalog);
        let rewriter = Rewriter::new(self.options.rewrite, &estimator);
        let adapter = CatalogAdapter(&self.catalog);
        bind_statement(stmt, &adapter, Some(&rewriter))
    }

    /// Optimize and execute a bound plan.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<(Schema, Vec<Tuple>)> {
        let optimized = optimize(plan);
        let schema = optimized.schema().clone();
        let rows = Executor::new(&self.catalog).run(&optimized)?;
        Ok((schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::Value;

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int NOT NULL, y text)")
            .unwrap();
        let r = db
            .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(r, StatementResult::Inserted(2));
        let rows = db.query("SELECT x, y FROM t ORDER BY x DESC").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(2), Value::text("b")]);
    }

    #[test]
    fn insert_with_expression_values() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("INSERT INTO t VALUES (1 + 2 * 3)").unwrap();
        let rows = db.query("SELECT x FROM t").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(7)]);
    }

    #[test]
    fn create_table_as_materializes() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let r = db
            .execute("CREATE TABLE big AS SELECT x * 10 AS x10 FROM t WHERE x > 1")
            .unwrap();
        assert_eq!(
            r,
            StatementResult::TableCreated {
                name: "big".into(),
                rows: 2
            }
        );
        let rows = db.query("SELECT x10 FROM big ORDER BY x10").unwrap();
        assert_eq!(rows.row(0), &[Value::Int(20)]);
    }

    #[test]
    fn views_create_and_drop() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        db.execute("CREATE VIEW v AS SELECT x FROM t").unwrap();
        assert!(db.query("SELECT * FROM v").unwrap().is_empty());
        assert_eq!(
            db.execute("DROP VIEW v").unwrap(),
            StatementResult::Dropped(true)
        );
        assert!(db.execute("SELECT * FROM v").is_err());
        assert_eq!(
            db.execute("DROP TABLE IF EXISTS nope").unwrap(),
            StatementResult::Dropped(false)
        );
    }

    #[test]
    fn explain_returns_a_tree() {
        let mut db = PermDb::new();
        db.execute("CREATE TABLE t (x int)").unwrap();
        let r = db.execute("EXPLAIN SELECT x FROM t WHERE x > 1").unwrap();
        match r {
            StatementResult::Explain(tree) => {
                assert!(tree.contains("Scan(t)"), "{tree}");
                assert!(tree.contains("Filter"), "{tree}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_on_ddl_is_an_error() {
        let mut db = PermDb::new();
        assert!(db.query("CREATE TABLE t (x int)").is_err());
    }

    #[test]
    fn run_script_executes_in_order() {
        let mut db = PermDb::new();
        let results = db
            .run_script("CREATE TABLE t (x int); INSERT INTO t VALUES (5); SELECT x FROM t;")
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].clone().expect_rows().row(0), &[Value::Int(5)]);
    }

    #[test]
    fn parse_errors_surface() {
        let mut db = PermDb::new();
        let err = db.execute("SELEC 1").unwrap_err();
        assert_eq!(err.kind(), "parse");
    }
}
