//! The paper's example data, verbatim.
//!
//! * [`forum_db`] — the online-forum database of **Figure 1** (tables
//!   `messages`, `users`, `imports`, `approved`) plus the view `v1`
//!   created by q2.
//! * [`add_figure4_tables`] — the two-column toy tables `s` and `r` whose
//!   provenance result is shown in **Figure 4 marker 5**
//!   (`i | prov_public_s_i | prov_public_r_i`).
//! * [`figure2_expected`] — the exact provenance relation of q1 shown in
//!   **Figure 2**.

use perm_types::Value;

use crate::db::PermDb;
use crate::result::QueryResult;

/// q1 of Figure 1, verbatim.
pub const Q1: &str = "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports";

/// q2 of Figure 1 (the view definition).
pub const Q2: &str =
    "CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports";

/// q3 of Figure 1, verbatim.
pub const Q3: &str = "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mId = a.mId) \
                      GROUP BY v1.mId, text";

/// The paper's §2.4 provenance aggregation listing.
pub const SEC24_PROVENANCE_AGG: &str =
    "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text \
     FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId";

/// The paper's §2.4 "query the provenance" listing (adapted only in that
/// the provenance attribute is written with its full generated name —
/// the paper abbreviates it as `p_origin`).
pub const SEC24_QUERY_PROVENANCE: &str = "SELECT text, prov_public_imports_origin FROM \
     (SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId \
      GROUP BY v1.mId) AS prov \
     WHERE count > 5 AND prov_public_imports_origin = 'superForum'";

/// The paper's §2.4 BASERELATION listing. (`v1` has columns `mid, text`;
/// the paper's `WHERE count > 3` refers to a hypothetical aggregated view —
/// we keep the exact structure with v1's real columns.)
pub const SEC24_BASERELATION: &str = "SELECT PROVENANCE text FROM v1 BASERELATION WHERE mid > 3";

/// Build the Figure 1 database: schema, rows and the view v1, exactly as
/// printed in the paper.
pub fn forum_db() -> PermDb {
    let mut db = PermDb::new();
    db.run_script(
        "CREATE TABLE messages (mId int NOT NULL, text text, uId int);
         CREATE TABLE users (uId int NOT NULL, name text);
         CREATE TABLE imports (mId int NOT NULL, text text, origin text);
         CREATE TABLE approved (uId int NOT NULL, mId int NOT NULL);

         INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
         INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
         INSERT INTO imports VALUES (2, 'hello ...', 'superForum'),
                                    (3, 'I don''t ...', 'HiBoard');
         INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);",
    )
    .expect("fixture script is valid");
    db.execute(Q2).expect("q2 creates v1");
    db
}

/// Add the Figure 4 marker-5 tables `s(i)` and `r(i)` with rows 1 and 2.
pub fn add_figure4_tables(db: &mut PermDb) {
    db.run_script(
        "CREATE TABLE s (i int);
         CREATE TABLE r (i int);
         INSERT INTO s VALUES (1), (2);
         INSERT INTO r VALUES (1), (2);",
    )
    .expect("figure 4 fixture script is valid");
}

/// The provenance of q1 as printed in Figure 2: each original result tuple
/// extended with the contributing tuple from `messages` or `imports`, the
/// other side padded with NULLs. Rows are in mId order.
pub fn figure2_expected() -> Vec<Vec<Value>> {
    let i = Value::Int;
    let t = |s: &str| Value::text(s);
    let n = || Value::Null;
    vec![
        vec![
            i(1),
            t("lorem ipsum ..."),
            i(1),
            t("lorem ipsum ..."),
            i(3),
            n(),
            n(),
            n(),
        ],
        vec![
            i(2),
            t("hello ..."),
            n(),
            n(),
            n(),
            i(2),
            t("hello ..."),
            t("superForum"),
        ],
        vec![
            i(3),
            t("I don't ..."),
            n(),
            n(),
            n(),
            i(3),
            t("I don't ..."),
            t("HiBoard"),
        ],
        vec![
            i(4),
            t("hi there ..."),
            i(4),
            t("hi there ..."),
            i(2),
            n(),
            n(),
            n(),
        ],
    ]
}

/// The Figure 2 column header (original attributes, then `messages`'
/// provenance, then `imports`').
pub fn figure2_columns() -> Vec<&'static str> {
    vec![
        "mid",
        "text",
        "prov_public_messages_mid",
        "prov_public_messages_text",
        "prov_public_messages_uid",
        "prov_public_imports_mid",
        "prov_public_imports_text",
        "prov_public_imports_origin",
    ]
}

/// Sort rows by the first column (mId) for stable golden comparisons.
pub fn sorted_by_first(result: &QueryResult) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = result.rows.iter().map(|t| t.values().to_vec()).collect();
    rows.sort_by(|a, b| a[0].sort_cmp(&b[0]));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forum_db_has_the_figure_1_rows() {
        let mut db = forum_db();
        assert_eq!(db.query("SELECT * FROM messages").unwrap().row_count(), 2);
        assert_eq!(db.query("SELECT * FROM users").unwrap().row_count(), 3);
        assert_eq!(db.query("SELECT * FROM imports").unwrap().row_count(), 2);
        assert_eq!(db.query("SELECT * FROM approved").unwrap().row_count(), 4);
        assert_eq!(db.query("SELECT * FROM v1").unwrap().row_count(), 4);
    }

    #[test]
    fn q1_returns_all_four_messages() {
        let mut db = forum_db();
        let r = db.query(Q1).unwrap();
        assert_eq!(r.row_count(), 4);
    }

    #[test]
    fn q3_matches_the_paper_description() {
        // q3 outputs each approved message's text with its approval count;
        // message 1 (never approved) is absent.
        let mut db = forum_db();
        let r = db.query(&format!("{Q3} ORDER BY text")).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.row(0), &[Value::Int(1), Value::text("hello ...")]);
        assert_eq!(r.row(1), &[Value::Int(3), Value::text("hi there ...")]);
    }

    #[test]
    fn figure4_tables_load() {
        let mut db = forum_db();
        add_figure4_tables(&mut db);
        assert_eq!(db.query("SELECT * FROM s").unwrap().row_count(), 2);
    }
}
