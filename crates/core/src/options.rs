//! Session options — the knobs the Perm-browser exposes (activate or
//! deactivate rewrite strategies, choose contribution semantics).
//!
//! Options are *per session*: every [`crate::server::Session`] carries its
//! own copy, so two sessions on the same [`crate::server::PermServer`] can
//! run the same query under different contribution semantics or rewrite
//! strategies concurrently. `SessionOptions` is `Copy`, which is what
//! makes session handles cheap to clone and hand across threads.

use perm_rewrite::{ContributionSemantics, RewriteOptions, StrategyMode, UnionStrategy};

/// Per-session configuration of the provenance pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionOptions {
    pub rewrite: RewriteOptions,
}

impl SessionOptions {
    /// Set the default contribution semantics (used when a
    /// `SELECT PROVENANCE` carries no `ON CONTRIBUTION` clause).
    pub fn with_default_semantics(mut self, s: ContributionSemantics) -> SessionOptions {
        self.rewrite.default_semantics = s;
        self
    }

    /// Choose how the union rewrite strategy is selected.
    pub fn with_union_strategy(mut self, m: StrategyMode) -> SessionOptions {
        self.rewrite.union_strategy = m;
        self
    }

    /// Force a specific union strategy (browser toggle / ablations).
    pub fn force_union_strategy(self, s: UnionStrategy) -> SessionOptions {
        self.with_union_strategy(StrategyMode::Fixed(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let o = SessionOptions::default()
            .with_default_semantics(ContributionSemantics::Lineage)
            .force_union_strategy(UnionStrategy::JoinBack);
        assert_eq!(o.rewrite.default_semantics, ContributionSemantics::Lineage);
        assert_eq!(
            o.rewrite.union_strategy,
            StrategyMode::Fixed(UnionStrategy::JoinBack)
        );
    }

    #[test]
    fn defaults_are_perms_defaults() {
        let o = SessionOptions::default();
        assert_eq!(
            o.rewrite.default_semantics,
            ContributionSemantics::Influence
        );
        assert_eq!(o.rewrite.union_strategy, StrategyMode::Heuristic);
    }
}
