//! Session options — the knobs the Perm-browser exposes (activate or
//! deactivate rewrite strategies, choose contribution semantics).
//!
//! Options are *per session*: every [`crate::server::Session`] carries its
//! own copy, so two sessions on the same [`crate::server::PermServer`] can
//! run the same query under different contribution semantics or rewrite
//! strategies concurrently. `SessionOptions` is `Copy`, which is what
//! makes session handles cheap to clone and hand across threads.

use perm_rewrite::{ContributionSemantics, RewriteOptions, StrategyMode, UnionStrategy};
use perm_storage::FsyncPolicy;

/// Configuration of a durable server ([`crate::server::PermServer::open_with`]):
/// fsync policy, checkpoint cadence and fault injection. Unlike
/// [`SessionOptions`] this is per *server*, not per session, and is not
/// `Copy` (it carries the failpoint spec string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When the WAL is fsynced. [`FsyncPolicy::Always`] (the default)
    /// makes every committed statement crash-durable; `Never` trades that
    /// for speed (tests, bulk loads).
    pub fsync: FsyncPolicy,
    /// Checkpoint the catalog after this many WAL records since the last
    /// checkpoint (`0` disables automatic checkpoints; explicit
    /// [`crate::server::PermServer::checkpoint`] still works).
    pub checkpoint_every: u64,
    /// Deterministic fault-injection spec (same grammar as the
    /// `PERM_FAILPOINTS` environment variable, which is used when this is
    /// `None`): `site=action[@N[+]]` entries separated by `;`.
    pub failpoints: Option<String>,
}

/// Default [`DurabilityOptions::checkpoint_every`]: frequent enough that
/// recovery replays a short tail, rare enough that checkpointing cost is
/// amortized over many commits.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            failpoints: None,
        }
    }
}

impl DurabilityOptions {
    /// Set the WAL fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> DurabilityOptions {
        self.fsync = policy;
        self
    }

    /// Checkpoint after `n` WAL records (`0` = only explicit checkpoints).
    pub fn with_checkpoint_every(mut self, n: u64) -> DurabilityOptions {
        self.checkpoint_every = n;
        self
    }

    /// Install a failpoint spec for this server's process (overrides
    /// `PERM_FAILPOINTS`).
    pub fn with_failpoints(mut self, spec: impl Into<String>) -> DurabilityOptions {
        self.failpoints = Some(spec.into());
        self
    }
}

/// Per-session configuration of the provenance pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    pub rewrite: RewriteOptions,
    /// Cap on the degree of parallelism the physical planner may choose
    /// per pipeline. `0` (the default) means "the machine's available
    /// parallelism"; `1` plans every operator serial.
    pub max_parallelism: usize,
    /// Minimum estimated input rows before a pipeline is parallelized;
    /// below it queries run serial and pay zero coordination overhead.
    pub parallel_row_threshold: usize,
    /// Run the static plan verifier after every optimizer/planner phase,
    /// even in release builds (debug builds always verify). Defaults to
    /// the `PERM_VERIFY_PLANS` environment variable (`1`/`true` enables),
    /// so CI can force verification on a release-mode test run.
    pub verify_plans: bool,
    /// Per-query cap on tracked execution memory, in bytes (`0`, the
    /// default, means uncapped). Unlike server pool pressure — which
    /// makes operators spill — exceeding this cap is the query's own
    /// fault and fails it with [`perm_types::PermError::ResourceExhausted`].
    pub memory_budget: usize,
    /// Most queries from sessions with this option that may *execute*
    /// concurrently (`0`, the default, means unlimited). Excess queries
    /// wait in the server's bounded admission queue.
    pub max_concurrent_queries: usize,
    /// How long a query may wait in the admission queue before failing
    /// with a typed resource error, in milliseconds.
    pub admission_timeout_ms: u64,
    /// Statement deadline, in milliseconds (`0`, the default, disables
    /// it). A statement running past the deadline is cancelled at its
    /// next cooperative check and fails with the typed
    /// [`perm_types::PermError::Cancelled`] (`reason: DeadlineExceeded`).
    /// The clock starts when the statement starts (admission wait
    /// included) — a statement queued past its deadline never runs.
    pub statement_timeout_ms: u64,
    /// Run vectorizable scans/filters/projections over columnar batches
    /// (on by default). Off = the row interpreter everywhere: the
    /// reference semantics, and the baseline the `columnar` bench
    /// section and the batch/row equivalence property compare against.
    pub columnar: bool,
}

/// Default [`SessionOptions::admission_timeout_ms`]: long enough that
/// transient contention queues instead of failing, short enough that a
/// wedged server surfaces as an error rather than a hang.
pub const DEFAULT_ADMISSION_TIMEOUT_MS: u64 = 10_000;

/// Read `PERM_VERIFY_PLANS` once per process.
fn verify_plans_env() -> bool {
    use std::sync::OnceLock;
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PERM_VERIFY_PLANS")
            .map(|v| {
                let v = v.trim();
                !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
            })
            .unwrap_or(false)
    })
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            rewrite: RewriteOptions::default(),
            max_parallelism: 0,
            parallel_row_threshold: perm_exec::DEFAULT_PARALLEL_THRESHOLD,
            verify_plans: verify_plans_env(),
            memory_budget: 0,
            max_concurrent_queries: 0,
            admission_timeout_ms: DEFAULT_ADMISSION_TIMEOUT_MS,
            statement_timeout_ms: 0,
            columnar: true,
        }
    }
}

impl SessionOptions {
    /// Cap intra-query parallelism (`0` = auto, `1` = serial).
    pub fn with_max_parallelism(mut self, n: usize) -> SessionOptions {
        self.max_parallelism = n;
        self
    }

    /// Set the minimum estimated input rows before the planner assigns a
    /// degree of parallelism > 1 (mainly for tests and benchmarks; the
    /// default keeps small queries serial).
    pub fn with_parallel_row_threshold(mut self, rows: usize) -> SessionOptions {
        self.parallel_row_threshold = rows.max(1);
        self
    }

    /// Set the default contribution semantics (used when a
    /// `SELECT PROVENANCE` carries no `ON CONTRIBUTION` clause).
    pub fn with_default_semantics(mut self, s: ContributionSemantics) -> SessionOptions {
        self.rewrite.default_semantics = s;
        self
    }

    /// Choose how the union rewrite strategy is selected.
    pub fn with_union_strategy(mut self, m: StrategyMode) -> SessionOptions {
        self.rewrite.union_strategy = m;
        self
    }

    /// Force a specific union strategy (browser toggle / ablations).
    pub fn force_union_strategy(self, s: UnionStrategy) -> SessionOptions {
        self.with_union_strategy(StrategyMode::Fixed(s))
    }

    /// Run the static plan verifier after every optimizer/planner phase
    /// regardless of build profile (debug builds always verify).
    pub fn with_verify_plans(mut self, on: bool) -> SessionOptions {
        self.verify_plans = on;
        self
    }

    /// Cap one query's tracked execution memory (`0` = uncapped). Going
    /// over the cap fails the query; contrast with the server pool
    /// budget, which makes operators spill instead.
    pub fn with_memory_budget(mut self, bytes: usize) -> SessionOptions {
        self.memory_budget = bytes;
        self
    }

    /// Cap how many of this session's queries execute at once (`0` =
    /// unlimited); excess queries queue for admission.
    pub fn with_max_concurrent_queries(mut self, n: usize) -> SessionOptions {
        self.max_concurrent_queries = n;
        self
    }

    /// How long a query may wait for admission before failing.
    pub fn with_admission_timeout_ms(mut self, ms: u64) -> SessionOptions {
        self.admission_timeout_ms = ms;
        self
    }

    /// Cancel any statement that runs longer than `ms` milliseconds
    /// (`0` = no deadline). The statement fails with the typed
    /// cancellation error, reason `DeadlineExceeded`.
    pub fn with_statement_timeout_ms(mut self, ms: u64) -> SessionOptions {
        self.statement_timeout_ms = ms;
        self
    }

    /// Enable or disable columnar batch execution (on by default).
    pub fn with_columnar(mut self, on: bool) -> SessionOptions {
        self.columnar = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let o = SessionOptions::default()
            .with_default_semantics(ContributionSemantics::Lineage)
            .force_union_strategy(UnionStrategy::JoinBack);
        assert_eq!(o.rewrite.default_semantics, ContributionSemantics::Lineage);
        assert_eq!(
            o.rewrite.union_strategy,
            StrategyMode::Fixed(UnionStrategy::JoinBack)
        );
    }

    #[test]
    fn defaults_are_perms_defaults() {
        let o = SessionOptions::default();
        assert_eq!(
            o.rewrite.default_semantics,
            ContributionSemantics::Influence
        );
        assert_eq!(o.rewrite.union_strategy, StrategyMode::Heuristic);
    }
}
