//! Session options — the knobs the Perm-browser exposes (activate or
//! deactivate rewrite strategies, choose contribution semantics).
//!
//! Options are *per session*: every [`crate::server::Session`] carries its
//! own copy, so two sessions on the same [`crate::server::PermServer`] can
//! run the same query under different contribution semantics or rewrite
//! strategies concurrently. `SessionOptions` is `Copy`, which is what
//! makes session handles cheap to clone and hand across threads.

use perm_rewrite::{ContributionSemantics, RewriteOptions, StrategyMode, UnionStrategy};

/// Per-session configuration of the provenance pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    pub rewrite: RewriteOptions,
    /// Cap on the degree of parallelism the physical planner may choose
    /// per pipeline. `0` (the default) means "the machine's available
    /// parallelism"; `1` plans every operator serial.
    pub max_parallelism: usize,
    /// Minimum estimated input rows before a pipeline is parallelized;
    /// below it queries run serial and pay zero coordination overhead.
    pub parallel_row_threshold: usize,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            rewrite: RewriteOptions::default(),
            max_parallelism: 0,
            parallel_row_threshold: perm_exec::DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

impl SessionOptions {
    /// Cap intra-query parallelism (`0` = auto, `1` = serial).
    pub fn with_max_parallelism(mut self, n: usize) -> SessionOptions {
        self.max_parallelism = n;
        self
    }

    /// Set the minimum estimated input rows before the planner assigns a
    /// degree of parallelism > 1 (mainly for tests and benchmarks; the
    /// default keeps small queries serial).
    pub fn with_parallel_row_threshold(mut self, rows: usize) -> SessionOptions {
        self.parallel_row_threshold = rows.max(1);
        self
    }

    /// Set the default contribution semantics (used when a
    /// `SELECT PROVENANCE` carries no `ON CONTRIBUTION` clause).
    pub fn with_default_semantics(mut self, s: ContributionSemantics) -> SessionOptions {
        self.rewrite.default_semantics = s;
        self
    }

    /// Choose how the union rewrite strategy is selected.
    pub fn with_union_strategy(mut self, m: StrategyMode) -> SessionOptions {
        self.rewrite.union_strategy = m;
        self
    }

    /// Force a specific union strategy (browser toggle / ablations).
    pub fn force_union_strategy(self, s: UnionStrategy) -> SessionOptions {
        self.with_union_strategy(StrategyMode::Fixed(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let o = SessionOptions::default()
            .with_default_semantics(ContributionSemantics::Lineage)
            .force_union_strategy(UnionStrategy::JoinBack);
        assert_eq!(o.rewrite.default_semantics, ContributionSemantics::Lineage);
        assert_eq!(
            o.rewrite.union_strategy,
            StrategyMode::Fixed(UnionStrategy::JoinBack)
        );
    }

    #[test]
    fn defaults_are_perms_defaults() {
        let o = SessionOptions::default();
        assert_eq!(
            o.rewrite.default_semantics,
            ContributionSemantics::Influence
        );
        assert_eq!(o.rewrite.union_strategy, StrategyMode::Heuristic);
    }
}
