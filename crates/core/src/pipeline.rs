//! The Figure 3 stage trace: run a query while recording the artifact each
//! pipeline stage produces.
//!
//! Figure 3 of the paper shows Perm's architecture: *Parser & Analyzer* →
//! *Provenance Rewriter* → *Planner* → *Executor*, with view unfolding
//! during analysis and the provenance rewrite in between. [`StageTrace`]
//! materializes these stages for one statement, which is what the demo's
//! "rewrite analysis" part walks through. Since the two-phase optimizer
//! landed, the Planner stage is split in two: the logical pass (rule
//! rewrites, column pruning, join reordering) and the *Physical Planner*
//! (cost-based operator selection), each with its own artifact.

use perm_algebra::{deparse, plan_tree, plan_tree_with_schema, LogicalPlan};
use perm_exec::{optimize_with, physical_tree, plan_physical, PhysicalPlan};
use perm_sql::{parse_statement, Query, QueryBody, Select, Statement, TableRef};
use perm_types::{PermError, Result};

use crate::db::PermDb;
use crate::result::QueryResult;
use crate::server::Session;

/// One pipeline stage with a human-readable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name as in Figure 3.
    pub name: &'static str,
    /// What the stage did (Figure 3's right-hand annotations).
    pub description: &'static str,
    /// Rendered artifact (SQL text, algebra tree, or result table).
    pub artifact: String,
}

/// The full trace of one query through the Figure 3 pipeline.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// The input SQL.
    pub sql: String,
    /// The analyzed plan of the *original* query (provenance clauses
    /// stripped) — the browser's marker 3.
    pub original_plan: LogicalPlan,
    /// The plan after the provenance rewrite (identical to
    /// `original_plan` if the query requests no provenance) — marker 4.
    pub rewritten_plan: LogicalPlan,
    /// The optimized logical plan.
    pub optimized_plan: LogicalPlan,
    /// The physical execution plan (cost-based operator selection) the
    /// executor dispatches on.
    pub physical_plan: PhysicalPlan,
    /// The executed result.
    pub result: QueryResult,
}

impl StageTrace {
    /// Run `sql` through the pipeline, capturing every stage.
    pub fn run(db: &mut PermDb, sql: &str) -> Result<StageTrace> {
        StageTrace::run_on(db.session(), sql)
    }

    /// Run `sql` through the pipeline of `session`, capturing every stage
    /// (the server-API equivalent of [`StageTrace::run`]).
    pub fn run_on(session: &Session, sql: &str) -> Result<StageTrace> {
        let stmt = parse_statement(sql)?;
        let query = match &stmt {
            Statement::Query(q) => q.clone(),
            _ => {
                return Err(PermError::Analysis(
                    "stage traces are recorded for queries only".into(),
                ))
            }
        };

        // One snapshot for the whole trace: every stage (both binds and
        // the execution) sees the same catalog even under concurrent DDL.
        let snapshot = session.snapshot();

        // Stage 1 artifact: the original (provenance-free) analyzed plan.
        let stripped = strip_provenance_query(&query);
        let original_plan = session.bind_sql_on(&snapshot, &render_back(&stripped))?;

        // Stage 2: analyze *with* the rewriter attached.
        let rewritten_plan = session.bind_sql_on(&snapshot, sql)?;

        // Stage 3: optimize (logical pass, fed by catalog statistics).
        let optimized_plan = optimize_with(
            rewritten_plan.clone(),
            &crate::db::CatalogCardinalities(&snapshot),
        );

        // Stage 4: physical planning (operator selection).
        let physical_plan = plan_physical(&snapshot, &optimized_plan);

        // Stage 5: execute.
        let (schema, rows) = session.run_plan_on(snapshot, rewritten_plan.clone())?;
        let result = QueryResult::new(&schema, rows);

        Ok(StageTrace {
            sql: sql.to_string(),
            original_plan,
            rewritten_plan,
            optimized_plan,
            physical_plan,
            result,
        })
    }

    /// The rewritten query as SQL (the browser's marker 2).
    pub fn rewritten_sql(&self) -> String {
        deparse(&self.rewritten_plan)
    }

    /// The Figure 3 stages (with the Planner split into its logical and
    /// physical phases) and their artifacts.
    pub fn stages(&self) -> Vec<Stage> {
        vec![
            Stage {
                name: "Parser & Analyzer",
                description: "syntactic and semantic analysis, view unfolding",
                artifact: plan_tree(&self.original_plan),
            },
            Stage {
                name: "Provenance Rewriter",
                description: "provenance rewrite",
                // Schema annotations show where the provenance attributes
                // enter the plan.
                artifact: plan_tree_with_schema(&self.rewritten_plan),
            },
            Stage {
                name: "Planner",
                description: "optimize and transform into plan",
                artifact: plan_tree(&self.optimized_plan),
            },
            Stage {
                name: "Physical Planner",
                description: "cost-based operator selection",
                artifact: physical_tree(&self.physical_plan),
            },
            Stage {
                name: "Executor",
                description: "execute plan and return results",
                artifact: self.result.to_table(),
            },
        ]
    }

    /// Render the whole trace as text (the `fig3` harness output).
    pub fn render(&self) -> String {
        let mut out = format!("input: {}\n\n", self.sql);
        for s in self.stages() {
            out.push_str(&format!(
                "== {} — {} ==\n{}\n",
                s.name, s.description, s.artifact
            ));
        }
        out
    }
}

/// Remove every `PROVENANCE` clause from a query (recursively), yielding
/// the *original* query q whose algebra tree the browser shows next to q+.
pub fn strip_provenance_query(q: &Query) -> Query {
    let mut q = q.clone();
    strip_body(&mut q.body);
    q
}

fn strip_body(body: &mut QueryBody) {
    match body {
        QueryBody::Select(s) => strip_select(s),
        QueryBody::SetOp { left, right, .. } => {
            strip_body(left);
            strip_body(right);
        }
    }
}

fn strip_select(s: &mut Select) {
    s.provenance = None;
    for item in &mut s.from {
        strip_table_ref(item);
    }
}

fn strip_table_ref(t: &mut TableRef) {
    match t {
        TableRef::Relation { .. } => {}
        TableRef::Subquery { query, .. } => {
            strip_body(&mut query.body);
        }
        TableRef::Join { left, right, .. } => {
            strip_table_ref(left);
            strip_table_ref(right);
        }
    }
}

/// Re-render a stripped query to SQL so it can go through `bind_sql`.
///
/// We keep this minimal: the parser's AST has no renderer, so we rebuild a
/// statement and round-trip it through the binder by deparsing the *bound*
/// plan instead. To avoid that complexity, the stripped query is wrapped
/// back into a `Statement` and printed via a tiny AST serializer below.
fn render_back(q: &Query) -> String {
    crate::sqlgen::query_to_sql(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::forum_db;

    #[test]
    fn trace_has_figure_3_stages_plus_physical_planner() {
        let mut db = forum_db();
        let trace = StageTrace::run(&mut db, "SELECT PROVENANCE mid FROM messages").unwrap();
        let stages = trace.stages();
        assert_eq!(
            stages.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec![
                "Parser & Analyzer",
                "Provenance Rewriter",
                "Planner",
                "Physical Planner",
                "Executor"
            ]
        );
        // The physical stage shows chosen operators, not logical ones.
        assert!(
            stages[3].artifact.contains("Scan(messages)"),
            "{}",
            stages[3].artifact
        );
    }

    #[test]
    fn original_plan_is_provenance_free() {
        let mut db = forum_db();
        let trace = StageTrace::run(&mut db, "SELECT PROVENANCE mid FROM messages").unwrap();
        assert_eq!(trace.original_plan.arity(), 1, "just `mid`");
        assert_eq!(trace.rewritten_plan.arity(), 4, "mid + 3 provenance attrs");
    }

    #[test]
    fn non_provenance_queries_trace_identically() {
        let mut db = forum_db();
        let trace = StageTrace::run(&mut db, "SELECT mid FROM messages").unwrap();
        assert_eq!(trace.original_plan, trace.rewritten_plan);
    }

    #[test]
    fn ddl_is_rejected() {
        let mut db = forum_db();
        assert!(StageTrace::run(&mut db, "CREATE TABLE z (x int)").is_err());
    }

    #[test]
    fn rendered_trace_mentions_every_stage() {
        let mut db = forum_db();
        let trace = StageTrace::run(&mut db, "SELECT PROVENANCE mid FROM messages").unwrap();
        let text = trace.render();
        assert!(text.contains("Provenance Rewriter"), "{text}");
        assert!(text.contains("prov_public_messages_mid"), "{text}");
    }
}
