//! # perm-core
//!
//! The Perm provenance management system (PMS) facade: the end-to-end
//! pipeline of the SIGMOD'09 demo paper's Figure 3.
//!
//! ```text
//! SQL/SQL-PLE ─▶ Parser & Analyzer ─▶ Provenance Rewriter ─▶ Planner ─▶ Executor
//!                (perm-sql,            (perm-rewrite)          (perm-exec)
//!                 perm-algebra)
//! ```
//!
//! # Quick start
//!
//! ```
//! use perm_core::fixtures::forum_db;
//!
//! let mut db = forum_db(); // the paper's Figure 1 database
//! let result = db
//!     .query("SELECT PROVENANCE mId, text FROM messages")
//!     .unwrap();
//! assert_eq!(
//!     result.columns,
//!     vec![
//!         "mid",
//!         "text",
//!         "prov_public_messages_mid",
//!         "prov_public_messages_text",
//!         "prov_public_messages_uid"
//!     ]
//! );
//! ```
//!
//! Features, per the paper: lazy and eager provenance ([`eager`]), the
//! `INFLUENCE` / `COPY` / `LINEAGE` contribution semantics, external
//! provenance, `BASERELATION`, rewrite-strategy toggles
//! ([`options::SessionOptions`]), the stage trace of Figure 3
//! ([`pipeline::StageTrace`]) and the browser panels of Figure 4
//! ([`browser::BrowserPanels`]).

pub mod browser;
pub mod db;
pub mod eager;
pub mod fixtures;
pub mod options;
pub mod pipeline;
pub mod result;
pub mod sqlgen;

pub use browser::BrowserPanels;
pub use db::{CatalogCardinalities, PermDb};
pub use eager::materialize_provenance;
pub use options::SessionOptions;
pub use pipeline::{Stage, StageTrace};
pub use result::{QueryResult, StatementResult};

// Re-export the pieces users touch through the facade.
pub use perm_rewrite::{
    ContributionSemantics, CopyMode, RewriteOptions, StrategyMode, UnionStrategy,
};
pub use perm_types::{PermError, Result, Tuple, Value};
