//! # perm-core
//!
//! The Perm provenance management system (PMS) facade: the end-to-end
//! pipeline of the SIGMOD'09 demo paper's Figure 3.
//!
//! ```text
//! SQL/SQL-PLE ─▶ Parser & Analyzer ─▶ Provenance Rewriter ─▶ Planner ─▶ Executor
//!                (perm-sql,            (perm-rewrite)          (perm-exec)
//!                 perm-algebra)
//! ```
//!
//! # Two ways in
//!
//! **Embedded, single session** — [`db::PermDb`], the original API: one
//! catalog, one session, materialized results. Good for tests, examples
//! and scripts.
//!
//! ```
//! use perm_core::fixtures::forum_db;
//!
//! let mut db = forum_db(); // the paper's Figure 1 database
//! let result = db
//!     .query("SELECT PROVENANCE mId, text FROM messages")
//!     .unwrap();
//! assert_eq!(
//!     result.columns,
//!     vec![
//!         "mid",
//!         "text",
//!         "prov_public_messages_mid",
//!         "prov_public_messages_text",
//!         "prov_public_messages_uid"
//!     ]
//! );
//! ```
//!
//! **Server, many sessions** — [`server::PermServer`], the concurrent API
//! mirroring how the paper's Perm lives inside PostgreSQL: one shared
//! catalog, cheap cloneable [`server::Session`] handles (`Send + Sync`,
//! queries take `&self`), [`server::Prepared`] statements that cache the
//! provenance-rewritten optimized plan across executions, and pull-based
//! [`result::RowStream`] results that stop scanning when the consumer
//! stops pulling.
//!
//! ```
//! use perm_core::PermServer;
//!
//! let server = PermServer::new();
//! let writer = server.session();
//! writer.run_script("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2);").unwrap();
//!
//! let reader = server.session(); // e.g. on another thread
//! let prepared = reader.prepare("SELECT PROVENANCE x FROM t").unwrap();
//! assert_eq!(prepared.execute().unwrap().row_count(), 2);
//!
//! let first = reader.query_stream("SELECT x FROM t LIMIT 1").unwrap().next();
//! assert!(first.unwrap().is_ok());
//! ```
//!
//! Features, per the paper: lazy and eager provenance ([`eager`]), the
//! `INFLUENCE` / `COPY` / `LINEAGE` contribution semantics, external
//! provenance, `BASERELATION`, rewrite-strategy toggles
//! ([`options::SessionOptions`]), the stage trace of Figure 3
//! ([`pipeline::StageTrace`]) and the browser panels of Figure 4
//! ([`browser::BrowserPanels`]).

#![forbid(unsafe_code)]

pub mod admission;
pub mod browser;
pub mod db;
pub mod eager;
pub mod fixtures;
pub mod options;
pub mod pipeline;
pub mod result;
pub mod server;
pub mod sqlgen;

pub use admission::{AdmissionPermit, ResourceGovernor, ADMISSION_QUEUE_BOUND};
pub use browser::BrowserPanels;
pub use db::{CatalogCardinalities, PermDb};
pub use eager::materialize_provenance;
pub use options::{DurabilityOptions, SessionOptions, DEFAULT_CHECKPOINT_EVERY};
pub use pipeline::{Stage, StageTrace};
pub use result::{QueryResult, RowStream, StatementResult};
pub use server::{PermServer, Prepared, Session};

// Re-export the pieces users touch through the facade.
pub use perm_exec::{MemoryPool, QueryMemory};
pub use perm_rewrite::{
    ContributionSemantics, CopyMode, RewriteOptions, StrategyMode, UnionStrategy,
};
pub use perm_storage::FsyncPolicy;
pub use perm_types::{CancelHandle, CancelReason, PermError, QueryContext, Result, Tuple, Value};
