//! The concurrent server API: [`PermServer`] → [`Session`] → [`Prepared`].
//!
//! The paper's Perm runs inside PostgreSQL, where one catalog serves many
//! backend sessions, plans are prepared once and executed many times, and
//! results stream to clients cursor-style. This module reproduces that
//! shape for the embedded engine:
//!
//! * [`PermServer`] owns the catalog behind a copy-on-write lock
//!   ([`perm_storage::SharedCatalog`]). DDL/DML take the write lock; any
//!   number of sessions read concurrently from immutable snapshots.
//! * [`Session`] is a cheap, cloneable, `Send + Sync` handle carrying its
//!   own [`SessionOptions`] (contribution semantics, rewrite-strategy
//!   toggles). All query methods take `&self`, so one session can be
//!   shared across threads — or cloned per thread with different options.
//! * [`Prepared`] caches the parsed, provenance-rewritten, optimized plan
//!   of one query so repeated execution skips parse + rewrite + optimize
//!   (the hot path for provenance queries asked many times).
//! * [`Session::query_stream`] returns a pull-based [`RowStream`] that
//!   yields tuples on demand instead of materializing the result.
//!
//! ```
//! use perm_core::PermServer;
//!
//! let server = PermServer::new();
//! let session = server.session();
//! session.execute("CREATE TABLE t (x int)").unwrap();
//! session.execute("INSERT INTO t VALUES (1), (2)").unwrap();
//!
//! // Prepare once, execute many times.
//! let prepared = session.prepare("SELECT PROVENANCE x FROM t").unwrap();
//! assert_eq!(prepared.execute().unwrap().row_count(), 2);
//! assert_eq!(prepared.execute().unwrap().row_count(), 2);
//!
//! // Sessions are cloneable handles onto the same catalog.
//! let other = server.session();
//! assert_eq!(other.query("SELECT x FROM t").unwrap().row_count(), 2);
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use perm_algebra::{bind_statement, BoundStatement, LogicalPlan};
use perm_exec::{
    estimated_peak_bytes, optimize_with, physical_tree, physical_tree_verbose, CatalogAdapter,
    Executor, MemoryPool, PhysicalPlan, QueryMemory,
};
use perm_rewrite::Rewriter;
use perm_sql::{parse_statement, parse_statements, ObjectKind, Statement};
use perm_storage::{failpoint, Catalog, CatalogWriteGuard, SharedCatalog, Table};
use perm_storage::{DurableStore, WalRecord, WAL_FILE};
use perm_types::{Column, PermError, QueryContext, Result, Schema, Tuple};

use crate::admission::{AdmissionPermit, ResourceGovernor};
use crate::db::CatalogCardinalities;
use crate::options::{DurabilityOptions, SessionOptions};
use crate::result::{QueryResult, RowStream, StatementResult};
use crate::sqlgen::{query_to_sql, statement_to_sql};

/// The durability side of a server opened with [`PermServer::open`]: the
/// WAL + checkpoint store behind a mutex, plus the recovery verdict.
///
/// Lock order is catalog write lock → store mutex, everywhere: the WAL
/// append of a committing statement and an explicit checkpoint both hold
/// the catalog lock first, so the log always records the same statement
/// order the catalog applied.
#[derive(Debug)]
struct Durability {
    /// `None` after unrecoverable corruption — the server is read-only.
    store: Mutex<Option<DurableStore>>,
    /// Auto-checkpoint after this many WAL records (`0` = never).
    checkpoint_every: u64,
    /// Why recovery degraded to read-only, when it did.
    recovery_error: Option<PermError>,
}

impl Durability {
    fn store(&self) -> std::sync::MutexGuard<'_, Option<DurableStore>> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fail fast before a write statement runs: read-only servers and
    /// poisoned logs refuse commits.
    fn check_writable(&self) -> Result<()> {
        match &*self.store() {
            Some(s) if s.is_poisoned() => Err(PermError::Execution(
                "write-ahead log disabled by an unrecovered append failure; \
                 reopen the server to repair the log tail"
                    .into(),
            )),
            Some(_) => Ok(()),
            None => Err(match &self.recovery_error {
                Some(e) => e
                    .clone()
                    .with_context("server is read-only after recovery failure"),
                None => PermError::Execution("server is read-only".into()),
            }),
        }
    }

    /// Make one committed statement durable.
    fn log(&self, rec: &WalRecord) -> Result<()> {
        match self.store().as_mut() {
            Some(s) => s.append(rec),
            None => Err(PermError::Execution("server is read-only".into())),
        }
    }

    /// Checkpoint if the log has grown past the configured cadence. A
    /// failure here is non-fatal to the committing statement — it is
    /// already durable in the WAL; the next commit retries.
    fn maybe_checkpoint(&self, catalog: &Catalog) {
        if self.checkpoint_every == 0 {
            return;
        }
        if let Some(s) = self.store().as_mut() {
            if s.records_since_checkpoint() >= self.checkpoint_every {
                let _ = s.checkpoint(catalog);
            }
        }
    }
}

/// The server: one shared catalog, many sessions.
///
/// Cloning a `PermServer` clones the *handle*; both clones serve the same
/// catalog. Dropping the server does not invalidate live sessions — the
/// catalog lives as long as any handle to it.
#[derive(Debug, Default, Clone)]
pub struct PermServer {
    catalog: SharedCatalog,
    governor: Arc<ResourceGovernor>,
    durability: Option<Arc<Durability>>,
    /// Set by [`PermServer::shutdown`]; every statement context carries a
    /// clone, so in-flight queries observe it at their next cooperative
    /// check and fail typed (`reason: ServerShutdown`).
    shutting_down: Arc<AtomicBool>,
    /// Server-wide statement id allocator; ids appear in cancellation
    /// errors so a client can tell *which* query was cancelled.
    next_query_id: Arc<AtomicU64>,
}

impl PermServer {
    /// A server over an empty catalog.
    pub fn new() -> PermServer {
        PermServer::default()
    }

    /// A server over an existing catalog (e.g. pre-loaded tables).
    pub fn with_catalog(catalog: Catalog) -> PermServer {
        PermServer {
            catalog: SharedCatalog::new(catalog),
            governor: Arc::default(),
            durability: None,
            shutting_down: Arc::default(),
            next_query_id: Arc::default(),
        }
    }

    /// Open (or create) a durable server over a data directory, with
    /// default durability options (fsync every commit, periodic
    /// checkpoints).
    ///
    /// Recovery loads the last checkpoint and replays the WAL tail through
    /// the full parse→plan→execute pipeline. A torn final record (a crash
    /// mid-append) is truncated silently; anything worse degrades the
    /// server to read-only over the last good prefix, with the typed
    /// [`PermError::Corruption`] available from
    /// [`PermServer::recovery_error`].
    pub fn open(dir: impl AsRef<Path>) -> Result<PermServer> {
        PermServer::open_with(dir, DurabilityOptions::default())
    }

    /// [`PermServer::open`] with explicit [`DurabilityOptions`].
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<PermServer> {
        match &options.failpoints {
            Some(spec) => failpoint::configure(spec)?,
            None => failpoint::configure_from_env()?,
        }
        let dir = dir.as_ref();
        let outcome = DurableStore::open(dir, options.fsync)?;
        let mut store = outcome.store;
        let mut corruption = outcome.corruption;

        // Replay through a plain (non-durable) server: recovered
        // statements must not be re-logged, and a plain server's write
        // path is exactly the commit path minus the WAL append.
        let replay_server = PermServer::with_catalog(outcome.base);
        let session = replay_server.session();
        for (offset, record) in &outcome.replay {
            // Chaos site: an injected fault here aborts recovery with a
            // typed error (the on-disk log is intact — reopening retries),
            // exercising the bounded-termination property of replay.
            perm_fault::exec_point("exec.replay.statement", "WAL replay")?;
            let applied = match record {
                WalRecord::Statement(sql) => session.execute(sql).map(|_| ()),
                WalRecord::CreateIndex { table, column } => session.create_index(table, column),
            };
            if let Err(e) = applied {
                // A logged statement committed once and must re-apply
                // cleanly; failure means the log (or snapshot) lies.
                // Writes through execute are atomic, so the catalog holds
                // exactly the records before this one.
                corruption = Some(PermError::Corruption {
                    path: dir.join(WAL_FILE).display().to_string(),
                    offset: *offset,
                    detail: format!("logged statement failed to re-apply: {}", e.message()),
                });
                store = None;
                break;
            }
        }

        Ok(PermServer {
            catalog: replay_server.catalog,
            governor: Arc::default(),
            durability: Some(Arc::new(Durability {
                store: Mutex::new(store),
                checkpoint_every: options.checkpoint_every,
                recovery_error: corruption,
            })),
            shutting_down: Arc::default(),
            next_query_id: Arc::default(),
        })
    }

    /// True when recovery degraded this server to read-only (see
    /// [`PermServer::recovery_error`]); always false for in-memory
    /// servers.
    pub fn is_read_only(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|d| d.store().is_none())
    }

    /// The corruption that made recovery degrade to read-only, if any.
    pub fn recovery_error(&self) -> Option<PermError> {
        self.durability
            .as_ref()
            .and_then(|d| d.recovery_error.clone())
    }

    /// Write a durable snapshot of the current catalog and truncate the
    /// WAL. Errors if the server is in-memory or read-only; on checkpoint
    /// I/O failure the previous snapshot (and the full log) stay intact.
    pub fn checkpoint(&self) -> Result<()> {
        let d = self.durability.as_ref().ok_or_else(|| {
            PermError::Execution("checkpoint requires a durable server (PermServer::open)".into())
        })?;
        // The write lock pins the catalog ↔ WAL correspondence.
        let guard = self.catalog.write();
        let snapshot = guard.snapshot();
        let mut store = d.store();
        match store.as_mut() {
            Some(s) => s.checkpoint(&snapshot),
            None => {
                // check_writable re-locks the store mutex; release ours
                // first (the scrutinee guard would otherwise deadlock).
                drop(store);
                d.check_writable()
            }
        }
    }

    /// A new session with default options.
    pub fn session(&self) -> Session {
        self.session_with_options(SessionOptions::default())
    }

    /// A new session with explicit options.
    pub fn session_with_options(&self, options: SessionOptions) -> Session {
        Session {
            catalog: self.catalog.clone(),
            governor: Arc::clone(&self.governor),
            durability: self.durability.clone(),
            shutting_down: Arc::clone(&self.shutting_down),
            next_query_id: Arc::clone(&self.next_query_id),
            options,
        }
    }

    /// A consistent snapshot of the current catalog.
    pub fn snapshot(&self) -> Arc<Catalog> {
        self.catalog.snapshot()
    }

    /// The server-wide execution memory pool every session's queries
    /// charge against. Unbounded by default; see
    /// [`PermServer::set_memory_budget`].
    pub fn memory_pool(&self) -> &MemoryPool {
        self.governor.pool()
    }

    /// Budget the server's execution memory (`None` = unbounded).
    /// Under pressure, buffering operators spill to disk and incoming
    /// queries whose estimates do not fit queue for admission — takes
    /// effect for queries admitted after the call.
    pub fn set_memory_budget(&self, bytes: Option<usize>) {
        self.governor.pool().set_budget(bytes);
    }

    /// The admission gate shared by this server's sessions.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.governor
    }

    /// Begin server shutdown: every in-flight statement observes it at
    /// its next cooperative check and fails with the typed cancellation
    /// error (`reason: ServerShutdown`); queued statements leave the
    /// admission queue. Statements started after this call fail on their
    /// first check. Idempotent; the catalog itself stays readable through
    /// existing snapshots.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
    }

    /// Has [`PermServer::shutdown`] been called (on any handle)?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }
}

/// One session against a [`PermServer`]: the unit of concurrency.
///
/// Sessions are cheap to clone and safe to share across threads (`Send +
/// Sync`); every query method takes `&self`. Reads run lock-free against
/// a catalog snapshot; [`Session::execute`] takes the catalog write lock
/// only for DDL/DML.
#[derive(Debug, Clone)]
pub struct Session {
    catalog: SharedCatalog,
    governor: Arc<ResourceGovernor>,
    durability: Option<Arc<Durability>>,
    shutting_down: Arc<AtomicBool>,
    next_query_id: Arc<AtomicU64>,
    options: SessionOptions,
}

impl Session {
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Change this session's options (the browser's strategy / semantics
    /// toggles). Affects only this handle — clones keep their own options.
    pub fn set_options(&mut self, options: SessionOptions) {
        self.options = options;
    }

    /// Builder-style options change, for `server.session().with_options(…)`.
    pub fn with_options(mut self, options: SessionOptions) -> Session {
        self.options = options;
        self
    }

    /// The server handle this session belongs to.
    pub fn server(&self) -> PermServer {
        PermServer {
            catalog: self.catalog.clone(),
            governor: Arc::clone(&self.governor),
            durability: self.durability.clone(),
            shutting_down: Arc::clone(&self.shutting_down),
            next_query_id: Arc::clone(&self.next_query_id),
        }
    }

    /// A consistent, immutable snapshot of the catalog as of now.
    pub fn snapshot(&self) -> Arc<Catalog> {
        self.catalog.snapshot()
    }

    /// A fresh per-statement lifecycle context: unique query id, the
    /// session's statement deadline (clock starts now, admission wait
    /// included), and the server's shutdown flag.
    fn query_context(&self) -> QueryContext {
        let timeout = (self.options.statement_timeout_ms > 0)
            .then(|| Duration::from_millis(self.options.statement_timeout_ms));
        QueryContext::new(
            self.next_query_id.fetch_add(1, Ordering::Relaxed) + 1,
            timeout,
            Some(Arc::clone(&self.shutting_down)),
        )
    }

    /// An executor over `snapshot` carrying this session's parallelism
    /// and memory options plus the statement's lifecycle context (used
    /// whenever the executor lowers logical plans itself).
    fn executor_on(&self, snapshot: Arc<Catalog>, ctx: QueryContext) -> Executor {
        Executor::new(snapshot)
            .with_parallelism(
                self.options.max_parallelism,
                self.options.parallel_row_threshold,
            )
            .with_verification(self.options.verify_plans)
            .with_memory(self.query_memory())
            .with_columnar(self.options.columnar)
            .with_context(ctx)
    }

    /// A fresh per-query memory view: the server pool plus this
    /// session's per-query cap ([`SessionOptions::memory_budget`]).
    fn query_memory(&self) -> QueryMemory {
        let cap = (self.options.memory_budget > 0).then_some(self.options.memory_budget);
        QueryMemory::new(self.governor.pool().clone(), cap)
    }

    /// Admit one execution of `physical` through the server's governor,
    /// waiting (bounded) if its estimated peak memory does not currently
    /// fit. The permit must stay alive for the duration of execution.
    /// The wait is cancellable through `ctx` (deadline and shutdown
    /// included): a cancelled waiter leaves the queue immediately.
    fn admit(&self, ctx: &QueryContext, physical: &PhysicalPlan) -> Result<AdmissionPermit> {
        self.governor.admit(
            ctx,
            estimated_peak_bytes(physical),
            self.options.max_concurrent_queries,
            Duration::from_millis(self.options.admission_timeout_ms),
        )
    }

    /// Optimize under this session's options: with
    /// [`SessionOptions::verify_plans`] the static verifier re-checks the
    /// plan after every optimizer phase and a violation surfaces as an
    /// error naming the responsible pass (debug builds always verify, but
    /// panic — a violation is an engine bug, not a user error).
    fn optimize_on(&self, plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
        let est = CatalogCardinalities(catalog);
        if self.options.verify_plans {
            perm_exec::optimize_verified(plan, &est)
        } else {
            Ok(optimize_with(plan, &est))
        }
    }

    /// Lower to a physical plan under this session's options, verifying
    /// the lowering when [`SessionOptions::verify_plans`] is set.
    fn lower_on(&self, catalog: &Catalog, optimized: &LogicalPlan) -> Result<PhysicalPlan> {
        let planner = self.planner_on(catalog);
        if self.options.verify_plans {
            planner.plan_verified(optimized)
        } else {
            Ok(planner.plan(optimized))
        }
    }

    /// A physical planner over `catalog` carrying this session's
    /// parallelism options.
    fn planner_on<'c>(&self, catalog: &'c Catalog) -> perm_exec::PhysicalPlanner<'c> {
        perm_exec::PhysicalPlanner::new(catalog)
            .max_parallelism(self.options.max_parallelism)
            .parallel_threshold(self.options.parallel_row_threshold)
            .columnar(self.options.columnar)
    }

    /// Exclusive write access to the catalog (index creation, direct
    /// table loads). Blocks other writers; readers keep their snapshots.
    ///
    /// **Drop the guard before querying from the same thread.** Query
    /// methods take the (non-reentrant) read lock to snapshot, so
    /// `session.query(..)` while this thread still holds the guard
    /// deadlocks. Take what you need from [`CatalogWriteGuard::snapshot`]
    /// instead, or end the guard's scope first.
    pub fn catalog_write(&self) -> CatalogWriteGuard<'_> {
        self.catalog.write()
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Execute one SQL / SQL-PLE statement.
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<StatementResult> {
        match stmt {
            // Queries never take the write lock.
            Statement::Query(_) | Statement::Explain { .. } => self.execute_read(stmt),
            _ => self.execute_write(stmt),
        }
    }

    /// Execute a `;`-separated script, returning one result per statement.
    ///
    /// Statements run in order; a failure reports the 1-based index of the
    /// statement that died and how many earlier statements had already
    /// been applied (their effects are *not* rolled back).
    pub fn run_script(&self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = parse_statements(sql)?;
        let total = stmts.len();
        let mut results = Vec::with_capacity(total);
        for (idx, stmt) in stmts.iter().enumerate() {
            let n = idx + 1;
            results.push(self.execute_statement(stmt).map_err(|e| {
                let applied = match idx {
                    0 => "no earlier statements applied".to_string(),
                    1 => "statement 1 already applied".to_string(),
                    _ => format!("statements 1-{idx} already applied"),
                };
                e.with_context(format!("script statement {n} of {total} ({applied})"))
            })?);
        }
        Ok(results)
    }

    /// Convenience: execute a query and return its materialized rows.
    /// `EXPLAIN [VERBOSE]` works here too, PostgreSQL-style: one
    /// `QUERY PLAN` text row per plan line.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        match self.execute(sql)? {
            StatementResult::Rows(r) => Ok(r),
            StatementResult::Explain(text) => Ok(QueryResult {
                columns: vec!["QUERY PLAN".into()],
                rows: text
                    .lines()
                    .map(|l| Tuple::new(vec![perm_types::Value::text(l)]))
                    .collect(),
            }),
            other => Err(PermError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// Execute a query cursor-style: a pull-based [`RowStream`] that
    /// yields one row per `next()`. With `LIMIT k` over a streamable plan
    /// the scan stops after producing `k` rows instead of materializing
    /// the whole table. The stream reads a consistent snapshot — DDL that
    /// commits after this call does not affect it.
    pub fn query_stream(&self, sql: &str) -> Result<RowStream> {
        let stmt = parse_statement(sql)?;
        let snapshot = self.snapshot();
        let plan = match self.bind_on(&snapshot, &stmt)? {
            BoundStatement::Query(plan) => plan,
            other => {
                return Err(PermError::Execution(format!(
                    "statement did not produce rows: {other:?}"
                )))
            }
        };
        let optimized = self.optimize_on(plan, &snapshot)?;
        let schema = optimized.schema().clone();
        let physical = self.lower_on(&snapshot, &optimized)?;
        // The stream holds the permit: admission lasts until the
        // consumer drops it, however few rows it pulls. The context
        // outlives execution inside the stream, which cancels it on
        // drop and hands out cancel handles.
        let ctx = self.query_context();
        let permit = self.admit(&ctx, &physical)?;
        let stream = self
            .executor_on(snapshot, ctx.clone())
            .into_stream_physical(&physical)?;
        Ok(RowStream::new(schema, stream, ctx).with_permit(permit))
    }

    /// Parse, provenance-rewrite, optimize and physically plan `sql`
    /// once, caching the result for repeated execution.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let stmt = parse_statement(sql)?;
        let snapshot = self.snapshot();
        let plan = match self.bind_on(&snapshot, &stmt)? {
            BoundStatement::Query(plan) => plan,
            other => {
                return Err(PermError::Analysis(format!(
                    "only queries can be prepared, got {other:?}"
                )))
            }
        };
        let optimized = self.optimize_on(plan, &snapshot)?;
        let physical = self.lower_on(&snapshot, &optimized)?;
        let schema = optimized.schema().clone();
        Ok(Prepared {
            session: self.clone(),
            sql: sql.to_string(),
            plan: Arc::new(optimized),
            physical: Arc::new(physical),
            schema,
        })
    }

    // ------------------------------------------------------------------
    // Pipeline stages (also used by the stage trace / browser)
    // ------------------------------------------------------------------

    /// Parse + analyze (+ provenance-rewrite when requested): the bound
    /// plan, pre-optimization. Binds against a fresh snapshot; multi-step
    /// clients that bind and execute separately should take one
    /// [`Session::snapshot`] and use [`Session::bind_sql_on`] /
    /// [`Session::run_plan_on`] so both steps see the same catalog.
    pub fn bind_sql(&self, sql: &str) -> Result<LogicalPlan> {
        self.bind_sql_on(&self.snapshot(), sql)
    }

    /// [`Session::bind_sql`] against an explicit catalog snapshot.
    pub fn bind_sql_on(&self, catalog: &Catalog, sql: &str) -> Result<LogicalPlan> {
        let stmt = parse_statement(sql)?;
        match self.bind_on(catalog, &stmt)? {
            BoundStatement::Query(p) | BoundStatement::Explain { plan: p, .. } => Ok(p),
            other => Err(PermError::Analysis(format!(
                "expected a query, got {other:?}"
            ))),
        }
    }

    /// Optimize and execute a bound plan against a fresh snapshot.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<(Schema, Vec<Tuple>)> {
        self.run_plan_on(self.snapshot(), plan)
    }

    /// [`Session::run_plan`] against an explicit catalog snapshot —
    /// normally the one the plan was bound on.
    pub fn run_plan_on(
        &self,
        catalog: Arc<Catalog>,
        plan: LogicalPlan,
    ) -> Result<(Schema, Vec<Tuple>)> {
        let optimized = self.optimize_on(plan, &catalog)?;
        let schema = optimized.schema().clone();
        let physical = self.lower_on(&catalog, &optimized)?;
        let ctx = self.query_context();
        let _permit = self.admit(&ctx, &physical)?;
        let rows = self.executor_on(catalog, ctx).run_physical(&physical)?;
        Ok((schema, rows))
    }

    fn bind_on(&self, catalog: &Catalog, stmt: &Statement) -> Result<BoundStatement> {
        let estimator = CatalogCardinalities(catalog);
        let rewriter = Rewriter::new(self.options.rewrite, &estimator);
        let adapter = CatalogAdapter(catalog);
        bind_statement(stmt, &adapter, Some(&rewriter))
    }

    // ------------------------------------------------------------------
    // Read / write paths
    // ------------------------------------------------------------------

    fn execute_read(&self, stmt: &Statement) -> Result<StatementResult> {
        let snapshot = self.snapshot();
        match self.bind_on(&snapshot, stmt)? {
            BoundStatement::Query(plan) => {
                let optimized = self.optimize_on(plan, &snapshot)?;
                let schema = optimized.schema().clone();
                let physical = self.lower_on(&snapshot, &optimized)?;
                let ctx = self.query_context();
                let _permit = self.admit(&ctx, &physical)?;
                let rows = self.executor_on(snapshot, ctx).run_physical(&physical)?;
                Ok(StatementResult::Rows(QueryResult::new(&schema, rows)))
            }
            BoundStatement::Explain {
                plan,
                verbose,
                verify,
            } => {
                if verify {
                    return self.explain_verify(&snapshot, plan, verbose);
                }
                // EXPLAIN never executes, so it skips admission.
                let optimized = self.optimize_on(plan, &snapshot)?;
                let physical = self.lower_on(&snapshot, &optimized)?;
                let text = if verbose {
                    // VERBOSE annotates each buffering operator with its
                    // estimated peak memory and spill configuration.
                    format!(
                        "== logical (optimized) ==\n{}\n== physical ==\n{}",
                        perm_algebra::plan_tree_with_schema(&optimized),
                        physical_tree_verbose(&physical)
                    )
                } else {
                    physical_tree(&physical)
                };
                Ok(StatementResult::Explain(text))
            }
            other => Err(PermError::Analysis(format!(
                "query statement bound to {other:?}"
            ))),
        }
    }

    /// `EXPLAIN VERIFY`: run the full optimizer pipeline with the static
    /// plan verifier after every phase — regardless of the session's
    /// `verify_plans` flag — and report each check before the plan. A
    /// violation aborts with an error naming the failing invariant and
    /// the responsible pass.
    fn explain_verify(
        &self,
        snapshot: &Arc<Catalog>,
        plan: LogicalPlan,
        verbose: bool,
    ) -> Result<StatementResult> {
        let mut report = String::from("== plan verification ==\n");
        perm_algebra::verify::verify_logical(&plan, "binding")?;
        report.push_str("binding: ok\n");
        // The provenance-rewrite contract (schema = original ++ provenance
        // columns, naming scheme intact) is enforced inside the binder for
        // every SELECT PROVENANCE; note it when the output carries
        // provenance columns.
        let prov = plan
            .schema()
            .iter()
            .filter(|c| c.name.starts_with("prov_"))
            .count();
        if prov > 0 {
            report.push_str(&format!(
                "provenance-rewrite: ok ({prov} provenance columns, contract checked at bind time)\n"
            ));
        }
        let (optimized, ran) = perm_exec::optimize_traced(plan, &CatalogCardinalities(snapshot))?;
        for phase in perm_exec::LOGICAL_PHASES {
            if ran.contains(phase) {
                report.push_str(&format!("{phase}: ok\n"));
            } else {
                report.push_str(&format!("{phase}: skipped (sublink plan)\n"));
            }
        }
        let physical = self.planner_on(snapshot).plan_verified(&optimized)?;
        report.push_str("physical-planning: ok\n");
        let text = if verbose {
            format!(
                "{report}\n== logical (optimized) ==\n{}\n== physical ==\n{}",
                perm_algebra::plan_tree_with_schema(&optimized),
                physical_tree(&physical)
            )
        } else {
            format!("{report}\n== physical ==\n{}", physical_tree(&physical))
        };
        Ok(StatementResult::Explain(text))
    }

    /// Create a hash index on `table(column)`.
    ///
    /// There is no SQL syntax for this (as in the demo, indexes are an
    /// executor concern); the call is logged to the WAL like any other
    /// committed write, so indexes survive restarts.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        if let Some(d) = &self.durability {
            d.check_writable()?;
        }
        let mut guard = self.catalog.write();
        let before = guard.snapshot();
        let applied = (|| {
            let t = guard.table_mut(table)?;
            let pos = t.schema().resolve(None, column)?;
            t.create_index(pos)
        })();
        if let Err(e) = applied {
            guard.restore(before);
            return Err(e);
        }
        if let Some(d) = &self.durability {
            if let Err(e) = d.log(&WalRecord::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
            }) {
                guard.restore(before);
                return Err(e);
            }
            d.maybe_checkpoint(&guard.snapshot());
        }
        Ok(())
    }

    /// DDL/DML under the catalog write lock. The read part of a compound
    /// statement (the query of `CREATE TABLE AS`, the row expressions of
    /// `INSERT`) runs against a pre-mutation snapshot taken under the same
    /// lock, then the mutation applies through copy-on-write — concurrent
    /// readers keep whatever snapshot they already hold.
    ///
    /// Statements are *atomic*: the pre-statement snapshot is restored on
    /// any failure (a multi-row `INSERT` with one bad row inserts
    /// nothing), which is also what lets WAL recovery equate "logged" with
    /// "fully applied". On a durable server the statement is appended to
    /// the log (and fsynced, per policy) after it applies in memory and
    /// before `execute` returns; if the append fails, the statement rolls
    /// back and the error surfaces to the caller — no committed statement
    /// is ever missing from the log.
    fn execute_write(&self, stmt: &Statement) -> Result<StatementResult> {
        if let Some(d) = &self.durability {
            d.check_writable()?;
        }
        let mut guard = self.catalog.write();
        let before = guard.snapshot();
        let result = match self.apply_write(&mut guard, stmt) {
            Ok(r) => r,
            Err(e) => {
                guard.restore(before);
                return Err(e);
            }
        };
        if let Some(d) = &self.durability {
            if let Err(e) = d.log(&WalRecord::Statement(statement_to_sql(stmt))) {
                guard.restore(before);
                return Err(e);
            }
            d.maybe_checkpoint(&guard.snapshot());
        }
        Ok(result)
    }

    /// The in-memory part of [`Session::execute_write`]: bind and apply
    /// one write statement through the guard. The caller owns atomicity
    /// (snapshot + restore) and durability (WAL append).
    fn apply_write(
        &self,
        guard: &mut CatalogWriteGuard<'_>,
        stmt: &Statement,
    ) -> Result<StatementResult> {
        let bound = self.bind_on(guard, stmt)?;
        match bound {
            BoundStatement::CreateTable { name, schema } => {
                guard.create_table(Table::new(name.clone(), schema))?;
                Ok(StatementResult::TableCreated { name, rows: 0 })
            }
            BoundStatement::CreateTableAs {
                name,
                plan,
                provenance_attrs,
            } => {
                let (schema, rows) = {
                    // The executor's snapshot is dropped before the
                    // mutation below, so make_mut stays in place unless
                    // other sessions hold snapshots.
                    let optimized = self.optimize_on(plan, guard)?;
                    let schema = optimized.schema().clone();
                    // CTAS runs a full query: give it a statement context
                    // so deadlines and shutdown cover the read part.
                    let rows = Executor::new(guard.snapshot())
                        .with_verification(self.options.verify_plans)
                        .with_columnar(self.options.columnar)
                        .with_context(self.query_context())
                        .run(&optimized)?;
                    (schema, rows)
                };
                // Stored column set loses the source qualifiers.
                let columns: Vec<Column> = schema
                    .iter()
                    .map(|c| {
                        let mut c = c.clone();
                        c.qualifier = None;
                        c
                    })
                    .collect();
                let mut table = Table::new(name.clone(), Schema::new(columns));
                // Eager provenance: remember which columns are provenance so
                // later provenance queries over this table propagate them
                // as external provenance (paper §1: "store the provenance
                // of a query for later reuse").
                if let Some(attrs) = provenance_attrs {
                    table.set_provenance_columns(attrs)?;
                }
                let n = rows.len();
                for r in rows {
                    table.push_raw(r);
                }
                guard.create_table(table)?;
                Ok(StatementResult::TableCreated { name, rows: n })
            }
            BoundStatement::CreateView { name, definition } => {
                // Remember the defining SQL so durable checkpoints can
                // persist the view (the AST itself is not serialized).
                let sql = query_to_sql(&definition);
                guard.create_view_with_sql(name.clone(), definition, sql)?;
                Ok(StatementResult::ViewCreated { name })
            }
            BoundStatement::Insert { table, rows } => {
                // Evaluate the bound row expressions (no input tuple).
                let tuples: Vec<Tuple> = {
                    let executor = Executor::new(guard.snapshot());
                    let empty = Tuple::empty();
                    rows.iter()
                        .map(|row| {
                            let env = perm_exec::eval::Env::new(&empty, &[]);
                            let vals = row
                                .iter()
                                .map(|e| perm_exec::eval::eval(&executor, e, &env))
                                .collect::<Result<Vec<_>>>()?;
                            Ok(Tuple::new(vals))
                        })
                        .collect::<Result<_>>()?
                };
                let n = guard.table_mut(&table)?.insert_all(tuples)?;
                Ok(StatementResult::Inserted(n))
            }
            BoundStatement::Drop {
                kind,
                name,
                if_exists,
            } => {
                let dropped = match kind {
                    ObjectKind::Table => guard.drop_table(&name, if_exists)?,
                    ObjectKind::View => guard.drop_view(&name, if_exists)?,
                };
                Ok(StatementResult::Dropped(dropped))
            }
            BoundStatement::Delete { table, predicate } => {
                // Evaluate the predicate against a pre-mutation snapshot,
                // then delete through the write guard. Storage rebuilds
                // indexes and invalidates the statistics cache.
                let doomed = {
                    let snapshot = guard.snapshot();
                    let executor = Executor::new(Arc::clone(&snapshot));
                    let t = snapshot.table(&table)?;
                    match &predicate {
                        None => (0..t.row_count()).collect::<Vec<_>>(),
                        Some(p) => {
                            let compiled = perm_exec::CompiledExpr::compile(&executor, p);
                            let mut out = Vec::new();
                            for (i, row) in t.rows().iter().enumerate() {
                                let env = perm_exec::eval::Env::new(row, &[]);
                                if compiled.eval_bool(&executor, &env)? == Some(true) {
                                    out.push(i);
                                }
                            }
                            out
                        }
                    }
                };
                let n = guard.table_mut(&table)?.delete_rows(&doomed);
                Ok(StatementResult::Deleted(n))
            }
            BoundStatement::Update {
                table,
                assignments,
                predicate,
            } => {
                let updates = {
                    let snapshot = guard.snapshot();
                    let executor = Executor::new(Arc::clone(&snapshot));
                    let t = snapshot.table(&table)?;
                    let compiled_pred = predicate
                        .as_ref()
                        .map(|p| perm_exec::CompiledExpr::compile(&executor, p));
                    let compiled_assign: Vec<(usize, perm_exec::CompiledExpr)> = assignments
                        .iter()
                        .map(|(pos, e)| (*pos, perm_exec::CompiledExpr::compile(&executor, e)))
                        .collect();
                    let mut out = Vec::new();
                    for (i, row) in t.rows().iter().enumerate() {
                        let env = perm_exec::eval::Env::new(row, &[]);
                        if let Some(p) = &compiled_pred {
                            if p.eval_bool(&executor, &env)? != Some(true) {
                                continue;
                            }
                        }
                        let mut vals = row.values().to_vec();
                        for (pos, e) in &compiled_assign {
                            vals[*pos] = e.eval(&executor, &env)?;
                        }
                        out.push((i, Tuple::new(vals)));
                    }
                    out
                };
                let n = guard.table_mut(&table)?.update_rows(updates)?;
                Ok(StatementResult::Updated(n))
            }
            BoundStatement::Query(_) | BoundStatement::Explain { .. } => {
                unreachable!("queries take the read path")
            }
        }
    }
}

/// A prepared statement: the parsed, provenance-rewritten, optimized plan
/// of one query, cached for repeated execution.
///
/// [`Prepared::execute`] skips parse, analysis, the provenance rewrite and
/// optimization entirely — each call only snapshots the catalog and runs
/// the cached plan, which is the hot path when the same provenance query
/// is asked many times (possibly from many threads; `Prepared` is `Send +
/// Sync` and cheap to clone).
///
/// Execution always reads the *current* catalog, so data changes between
/// calls are visible. Schema changes to a scanned table invalidate the
/// plan: execution compares the table's column names and types against
/// the plan's and fails with a schema-mismatch error rather than
/// returning wrong rows; re-`prepare` after DDL.
#[derive(Clone)]
pub struct Prepared {
    session: Session,
    sql: String,
    plan: Arc<LogicalPlan>,
    physical: Arc<PhysicalPlan>,
    schema: Schema,
}

impl Prepared {
    /// The SQL this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The cached optimized logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The cached physical execution plan.
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Run the cached physical plan against the current catalog,
    /// materializing the result. Every execution is individually
    /// admitted through the server's governor.
    pub fn execute(&self) -> Result<QueryResult> {
        let ctx = self.session.query_context();
        let _permit = self.session.admit(&ctx, &self.physical)?;
        let rows = self
            .session
            .executor_on(self.session.snapshot(), ctx)
            .run_physical(&self.physical)?;
        Ok(QueryResult::new(&self.schema, rows))
    }

    /// Run the cached plan cursor-style (see [`Session::query_stream`]).
    pub fn execute_stream(&self) -> Result<RowStream> {
        let ctx = self.session.query_context();
        let permit = self.session.admit(&ctx, &self.physical)?;
        let stream = self
            .session
            .executor_on(self.session.snapshot(), ctx.clone())
            .into_stream_physical(&self.physical)?;
        Ok(RowStream::new(self.schema.clone(), stream, ctx).with_permit(permit))
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("sql", &self.sql)
            .field("columns", &self.schema.names())
            .finish()
    }
}

// The whole point of the server API: handles and prepared plans move
// freely across threads. Enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PermServer>();
    assert_send_sync::<Session>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<LogicalPlan>();
    const fn assert_send<T: Send>() {}
    assert_send::<RowStream>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::Value;

    fn seeded() -> (PermServer, Session) {
        let server = PermServer::new();
        let session = server.session();
        session
            .run_script(
                "CREATE TABLE t (x int NOT NULL, y text);
                 INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');",
            )
            .unwrap();
        (server, session)
    }

    #[test]
    fn sessions_share_one_catalog() {
        let (server, s1) = seeded();
        let s2 = server.session();
        assert_eq!(s2.query("SELECT x FROM t").unwrap().row_count(), 3);
        s2.execute("INSERT INTO t VALUES (4, 'd')").unwrap();
        assert_eq!(s1.query("SELECT x FROM t").unwrap().row_count(), 4);
    }

    #[test]
    fn snapshots_survive_writer_activity() {
        // A reader's snapshot is taken before the writer starts and stays
        // queryable while (and after) the writer mutates.
        let (_, session) = seeded();
        let snapshot = session.snapshot();
        session.execute("DROP TABLE t").unwrap();
        assert_eq!(snapshot.table("t").unwrap().row_count(), 3);
        assert!(session.snapshot().table("t").is_err());
    }

    #[test]
    fn prepared_reuse_matches_one_shot_query() {
        let (_, session) = seeded();
        let sql = "SELECT PROVENANCE x, y FROM t WHERE x >= 2";
        let prepared = session.prepare(sql).unwrap();
        let one_shot = session.query(sql).unwrap();
        assert_eq!(prepared.execute().unwrap(), one_shot);
        assert_eq!(prepared.execute().unwrap(), one_shot, "re-execution");
        assert_eq!(
            prepared.schema().names(),
            vec!["x", "y", "prov_public_t_x", "prov_public_t_y"]
        );
    }

    #[test]
    fn prepared_sees_data_changes_but_fails_on_schema_change() {
        let (_, session) = seeded();
        let prepared = session.prepare("SELECT x FROM t").unwrap();
        assert_eq!(prepared.execute().unwrap().row_count(), 3);
        session.execute("INSERT INTO t VALUES (9, 'z')").unwrap();
        assert_eq!(prepared.execute().unwrap().row_count(), 4, "fresh data");
        session.execute("DROP TABLE t").unwrap();
        session.execute("CREATE TABLE t (x int)").unwrap();
        let err = prepared.execute().unwrap_err();
        assert!(err.message().contains("changed schema"), "{err}");
    }

    #[test]
    fn prepared_fails_on_same_arity_schema_change() {
        // A dropped-and-recreated table with the *same* column count but
        // different names/types must error, not return mislabeled rows.
        let (_, session) = seeded();
        let prepared = session.prepare("SELECT x FROM t").unwrap();
        session.execute("DROP TABLE t").unwrap();
        session.execute("CREATE TABLE t (a text, b text)").unwrap();
        session.execute("INSERT INTO t VALUES ('u', 'v')").unwrap();
        let err = prepared.execute().unwrap_err();
        assert!(err.message().contains("changed schema"), "{err}");
        let err = prepared.execute_stream().unwrap_err();
        assert!(err.message().contains("changed schema"), "{err}");
    }

    #[test]
    fn prepare_rejects_ddl() {
        let (_, session) = seeded();
        let err = session.prepare("DROP TABLE t").unwrap_err();
        assert_eq!(err.kind(), "analysis");
    }

    #[test]
    fn query_stream_yields_all_rows_in_order() {
        let (_, session) = seeded();
        let stream = session
            .query_stream("SELECT x FROM t ORDER BY x DESC")
            .unwrap();
        assert_eq!(stream.columns(), ["x"]);
        let xs: Vec<Value> = stream.map(|r| r.unwrap().get(0).clone()).collect();
        assert_eq!(xs, vec![Value::Int(3), Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn query_stream_limit_stops_scanning() {
        let server = PermServer::new();
        let session = server.session();
        session.execute("CREATE TABLE big (x int)").unwrap();
        {
            let mut w = session.catalog_write();
            let t = w.table_mut("big").unwrap();
            for i in 0..1_000 {
                t.push_raw(Tuple::new(vec![Value::Int(i)]));
            }
        }
        let mut stream = session
            .query_stream("SELECT x + 1 FROM big LIMIT 3")
            .unwrap();
        let mut got = Vec::new();
        for r in stream.by_ref() {
            got.push(r.unwrap());
        }
        assert_eq!(got.len(), 3);
        assert!(
            stream.rows_scanned() <= 3,
            "LIMIT 3 pulled {} scan rows",
            stream.rows_scanned()
        );
    }

    #[test]
    fn streams_read_a_consistent_snapshot_across_ddl() {
        let (_, session) = seeded();
        let stream = session.query_stream("SELECT x FROM t").unwrap();
        session.execute("DROP TABLE t").unwrap();
        // The stream still drains its pre-DDL snapshot.
        assert_eq!(stream.count(), 3);
        assert!(session.query("SELECT x FROM t").is_err());
    }

    #[test]
    fn run_script_reports_failing_statement_index() {
        let (_, session) = seeded();
        let err = session
            .run_script(
                "CREATE TABLE s1 (a int);
                 INSERT INTO s1 VALUES (1);
                 INSERT INTO nope VALUES (2);
                 CREATE TABLE s2 (b int);",
            )
            .unwrap_err();
        assert_eq!(err.kind(), "analysis");
        assert!(
            err.message().starts_with("script statement 3 of 4"),
            "{err}"
        );
        assert!(
            err.message().contains("statements 1-2 already applied"),
            "{err}"
        );
        // Earlier DDL really did apply.
        assert_eq!(session.query("SELECT a FROM s1").unwrap().row_count(), 1);
    }

    #[test]
    fn explain_through_query_yields_plan_rows() {
        let (_, session) = seeded();
        let r = session
            .query("EXPLAIN SELECT x FROM t WHERE x = 2")
            .unwrap();
        assert_eq!(r.columns, vec!["QUERY PLAN"]);
        assert!(r.row_count() >= 1);
        let first = r.row(0)[0].to_string();
        assert!(first.contains("Scan(t)"), "{first}");
        // VERBOSE adds the logical tree section.
        let v = session
            .query("EXPLAIN VERBOSE SELECT x FROM t WHERE x = 2")
            .unwrap();
        assert!(v.row_count() > r.row_count());
    }

    #[test]
    fn explain_verify_reports_each_phase() {
        let (_, session) = seeded();
        let r = session
            .query("EXPLAIN VERIFY SELECT x FROM t WHERE x = 2")
            .unwrap();
        let text = (0..r.row_count())
            .map(|i| r.row(i)[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("== plan verification =="), "{text}");
        assert!(text.contains("binding: ok"), "{text}");
        assert!(text.contains("column-pruning: ok"), "{text}");
        assert!(text.contains("physical-planning: ok"), "{text}");
        assert!(text.contains("Scan(t)"), "{text}");

        // Provenance queries additionally report the rewrite contract.
        let p = session
            .query("EXPLAIN VERIFY SELECT PROVENANCE x FROM t")
            .unwrap();
        let text = (0..p.row_count())
            .map(|i| p.row(i)[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("provenance-rewrite: ok"), "{text}");
    }

    #[test]
    fn verify_plans_session_runs_clean() {
        // With verify_plans on, every read path re-checks each optimizer
        // phase; well-formed queries must be unaffected.
        let (server, _) = seeded();
        let s = server.session_with_options(SessionOptions::default().with_verify_plans(true));
        assert!(s.options().verify_plans);
        assert_eq!(
            s.query("SELECT PROVENANCE x, y FROM t WHERE x >= 2")
                .unwrap()
                .row_count(),
            2
        );
        let prepared = s.prepare("SELECT x FROM t ORDER BY x").unwrap();
        assert_eq!(prepared.execute().unwrap().row_count(), 3);
        assert_eq!(s.query_stream("SELECT x FROM t").unwrap().count(), 3);
        // Correlated sublinks exercise the per-plan verification memo.
        assert_eq!(
            s.query("SELECT x FROM t WHERE x = (SELECT max(x) FROM t)")
                .unwrap()
                .row_count(),
            1
        );
    }

    #[test]
    fn insert_is_atomic() {
        // One bad row in a multi-row INSERT must leave no trace — the
        // property WAL recovery relies on (logged ⇔ fully applied).
        let (_, session) = seeded();
        let err = session
            .execute("INSERT INTO t VALUES (7, 'g'), ('oops', 'h')")
            .unwrap_err();
        assert_eq!(err.kind(), "catalog", "binder rejects the mistyped row");
        assert_eq!(session.query("SELECT x FROM t").unwrap().row_count(), 3);
    }

    #[test]
    fn per_session_options_are_independent() {
        use perm_rewrite::ContributionSemantics;
        let (server, s1) = seeded();
        let s2 = server.session_with_options(
            SessionOptions::default().with_default_semantics(ContributionSemantics::Lineage),
        );
        assert_eq!(
            s1.options().rewrite.default_semantics,
            ContributionSemantics::Influence
        );
        assert_eq!(
            s2.options().rewrite.default_semantics,
            ContributionSemantics::Lineage
        );
    }

    mod durability {
        use super::*;
        use crate::options::DurabilityOptions;
        use std::path::PathBuf;
        use std::sync::{Mutex, MutexGuard, PoisonError};

        /// Failpoint state is process-global; durability tests serialize
        /// on this lock and clear the registry on both ends.
        fn fp_lock() -> MutexGuard<'static, ()> {
            static LOCK: Mutex<()> = Mutex::new(());
            let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
            failpoint::clear();
            g
        }

        struct TempDir(PathBuf);
        impl TempDir {
            fn new(name: &str) -> TempDir {
                let p = std::env::temp_dir()
                    .join(format!("perm-server-dur-{}-{name}", std::process::id()));
                let _ = std::fs::remove_dir_all(&p);
                TempDir(p)
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                failpoint::clear();
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }

        /// Fast options for tests: no fsync, no auto-checkpoint.
        fn opts() -> DurabilityOptions {
            DurabilityOptions::default()
                .with_fsync(perm_storage::FsyncPolicy::Never)
                .with_checkpoint_every(0)
        }

        #[test]
        fn reopen_recovers_ddl_dml_and_indexes() {
            let _g = fp_lock();
            let dir = TempDir::new("reopen");
            {
                let server = PermServer::open_with(&dir.0, opts()).unwrap();
                assert!(!server.is_read_only());
                let s = server.session();
                s.run_script(
                    "CREATE TABLE t (x int NOT NULL, y text);
                     INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');
                     CREATE VIEW v AS SELECT x FROM t WHERE x > 1;
                     UPDATE t SET y = 'z' WHERE x = 2;
                     DELETE FROM t WHERE x = 3;
                     CREATE TABLE p AS SELECT PROVENANCE y FROM t;",
                )
                .unwrap();
                s.create_index("t", "x").unwrap();
            }
            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            assert!(!server.is_read_only());
            let s = server.session();
            let r = s.query("SELECT x, y FROM t ORDER BY x").unwrap();
            assert_eq!(r.row_count(), 2);
            assert_eq!(r.row(1)[1], Value::text("z"));
            assert_eq!(s.query("SELECT x FROM v").unwrap().row_count(), 1);
            // The index and the eager-provenance metadata survived.
            assert_eq!(s.snapshot().table("t").unwrap().index_columns(), vec![0]);
            // `SELECT PROVENANCE y FROM t` emits y plus one provenance
            // attribute per column of t, so columns 1 and 2 of p are
            // provenance.
            assert_eq!(
                s.snapshot().table("p").unwrap().provenance_columns(),
                &[1, 2],
                "CREATE TABLE AS provenance columns recovered"
            );
        }

        #[test]
        fn checkpoint_truncates_wal_and_recovery_uses_snapshot() {
            let _g = fp_lock();
            let dir = TempDir::new("ckpt");
            {
                let server = PermServer::open_with(&dir.0, opts()).unwrap();
                let s = server.session();
                s.execute("CREATE TABLE t (x int)").unwrap();
                for i in 0..10 {
                    s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                }
                let before = std::fs::metadata(dir.0.join(WAL_FILE)).unwrap().len();
                server.checkpoint().unwrap();
                let after = std::fs::metadata(dir.0.join(WAL_FILE)).unwrap().len();
                assert!(
                    after < before,
                    "checkpoint truncates the log ({before} -> {after})"
                );
                // Post-checkpoint commits land in the fresh log.
                s.execute("INSERT INTO t VALUES (99)").unwrap();
            }
            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            let s = server.session();
            assert_eq!(s.query("SELECT x FROM t").unwrap().row_count(), 11);
        }

        #[test]
        fn auto_checkpoint_fires_at_cadence() {
            let _g = fp_lock();
            let dir = TempDir::new("autockpt");
            let server = PermServer::open_with(&dir.0, opts().with_checkpoint_every(3)).unwrap();
            let s = server.session();
            s.execute("CREATE TABLE t (x int)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
            assert!(
                !dir.0.join(perm_storage::CHECKPOINT_FILE).exists(),
                "2 records: below cadence"
            );
            s.execute("INSERT INTO t VALUES (2)").unwrap();
            assert!(
                dir.0.join(perm_storage::CHECKPOINT_FILE).exists(),
                "3rd record triggers the checkpoint"
            );
        }

        #[test]
        fn wal_append_failure_rolls_back_the_statement() {
            let _g = fp_lock();
            let dir = TempDir::new("appendfail");
            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            let s = server.session();
            s.execute("CREATE TABLE t (x int)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();

            failpoint::configure("wal.append.write=io_err").unwrap();
            let err = s.execute("INSERT INTO t VALUES (2)").unwrap_err();
            assert_eq!(err.kind(), "io");
            // Not applied in memory (no phantom row a crash would lose) …
            assert_eq!(s.query("SELECT x FROM t").unwrap().row_count(), 1);
            failpoint::clear();

            // … and the log tail is intact: later commits and recovery work.
            s.execute("INSERT INTO t VALUES (3)").unwrap();
            drop(server);
            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            let r = server
                .session()
                .query("SELECT x FROM t ORDER BY x")
                .unwrap();
            assert_eq!(r.row_count(), 2);
            assert_eq!(r.row(1)[0], Value::Int(3));
        }

        #[test]
        fn mid_log_corruption_degrades_to_read_only() {
            let _g = fp_lock();
            let dir = TempDir::new("corrupt");
            {
                let server = PermServer::open_with(&dir.0, opts()).unwrap();
                let s = server.session();
                s.execute("CREATE TABLE t (x int)").unwrap();
                s.execute("INSERT INTO t VALUES (1)").unwrap();
            }
            // Flip a payload byte of the *first* record: a mid-log checksum
            // mismatch, which recovery must not truncate away.
            let wal_path = dir.0.join(WAL_FILE);
            let mut bytes = std::fs::read(&wal_path).unwrap();
            bytes[16 + 8 + 1] ^= 0x40;
            std::fs::write(&wal_path, &bytes).unwrap();

            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            assert!(server.is_read_only());
            let err = server.recovery_error().expect("typed corruption");
            assert_eq!(err.kind(), "corruption");
            assert!(err.message().contains("offset 16"), "{err}");

            // Reads serve the last good prefix (nothing, here); writes fail
            // with the recovery error, not a panic.
            let s = server.session();
            assert!(s.query("SELECT x FROM t").is_err(), "t was never recovered");
            let err = s.execute("CREATE TABLE u (a int)").unwrap_err();
            assert_eq!(err.kind(), "corruption");
            assert!(err.message().contains("read-only"), "{err}");
            assert!(server.checkpoint().is_err(), "no checkpoint while degraded");
        }

        #[test]
        fn torn_final_record_is_truncated_not_fatal() {
            let _g = fp_lock();
            let dir = TempDir::new("torn");
            {
                let server = PermServer::open_with(&dir.0, opts()).unwrap();
                let s = server.session();
                s.execute("CREATE TABLE t (x int)").unwrap();
                s.execute("INSERT INTO t VALUES (1)").unwrap();
            }
            // Chop the last record mid-payload: a crash during append.
            let wal_path = dir.0.join(WAL_FILE);
            let bytes = std::fs::read(&wal_path).unwrap();
            std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            assert!(!server.is_read_only(), "a torn tail is expected, not fatal");
            let s = server.session();
            assert_eq!(
                s.query("SELECT x FROM t").unwrap().row_count(),
                0,
                "the torn INSERT never committed"
            );
            // The repaired log accepts new commits at the truncated tail.
            s.execute("INSERT INTO t VALUES (7)").unwrap();
            drop(server);
            let server = PermServer::open_with(&dir.0, opts()).unwrap();
            assert_eq!(
                server
                    .session()
                    .query("SELECT x FROM t")
                    .unwrap()
                    .row_count(),
                1
            );
        }
    }
}
