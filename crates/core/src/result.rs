//! Query results — materialized ([`QueryResult`], with the textual
//! rendering of the browser's result panel, Figure 4 marker 5) and
//! streaming ([`RowStream`], the cursor-style interface of
//! `Session::query_stream`).

use std::fmt;

use perm_exec::TupleStream;
use perm_types::{CancelHandle, QueryContext, Result, Schema, Tuple, Value};

use crate::admission::AdmissionPermit;

/// A materialized query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Tuple>,
}

impl QueryResult {
    pub fn new(schema: &Schema, rows: Vec<Tuple>) -> QueryResult {
        QueryResult {
            columns: schema.names().iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw values of one row.
    pub fn row(&self, i: usize) -> &[Value] {
        self.rows[i].values()
    }

    /// Index of a column by (case-insensitive) name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// psql-style ASCII table, NULLs rendered as `null` (as the paper's
    /// Figure 2 does).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();

        let mut out = String::new();
        // Header.
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:^w$} ", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("|"));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        out.push_str(&sep.join("+"));
        out.push('\n');
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!(" {:<w$} ", s, w = widths[i]))
                .collect();
            out.push_str(&cells.join("|"));
            out.push('\n');
        }
        out.push_str(&format!(
            "({} row{})\n",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        ));
        out
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// A pull-based query result: an `Iterator<Item = Result<Tuple>>` plus the
/// output schema.
///
/// Returned by `Session::query_stream` and `Prepared::execute_stream`.
/// Rows are produced on demand from a consistent catalog snapshot, so a
/// consumer that stops early (for example after `LIMIT k` rows, or because
/// the client disconnected) never pays for the rest of the result. The
/// stream is fused: after the first error it yields `None` forever.
pub struct RowStream {
    columns: Vec<String>,
    schema: Schema,
    inner: TupleStream,
    /// The query's lifecycle context: the stream hands out cancel
    /// handles ([`RowStream::cancel_handle`]) and cancels the query
    /// itself when dropped, so a consumer that walks away mid-result
    /// stops the exchange producers instead of orphaning them.
    ctx: QueryContext,
    /// The stream's admission slot; releasing it (on drop) lets queued
    /// queries run, so a stream counts as "running" until the consumer
    /// is done with it — not just until its rows are produced.
    permit: Option<AdmissionPermit>,
}

impl RowStream {
    pub(crate) fn new(schema: Schema, inner: TupleStream, ctx: QueryContext) -> RowStream {
        RowStream {
            columns: schema.names().iter().map(|s| s.to_string()).collect(),
            schema,
            inner,
            ctx,
            permit: None,
        }
    }

    /// Attach the admission permit this stream holds until dropped.
    pub(crate) fn with_permit(mut self, permit: AdmissionPermit) -> RowStream {
        self.permit = Some(permit);
        self
    }

    /// A handle that cancels this query from any thread. The next
    /// cooperative check (a morsel claim, a batch boundary, a spill
    /// partition boundary, the stream's own pull loop) observes it and
    /// the stream yields the typed `cancelled` error, then fuses.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.ctx.handle()
    }

    /// The output schema of the query.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// How many base-table rows the stream's scans have pulled so far
    /// (see [`perm_exec::TupleStream::rows_scanned`]).
    pub fn rows_scanned(&self) -> usize {
        self.inner.rows_scanned()
    }

    /// Drain the stream into a materialized [`QueryResult`].
    pub fn collect_result(mut self) -> Result<QueryResult> {
        // By-ref drain: RowStream has a Drop impl, so its fields cannot
        // be moved out.
        let rows = (&mut self.inner).collect::<Result<Vec<Tuple>>>()?;
        Ok(QueryResult {
            columns: std::mem::take(&mut self.columns),
            rows,
        })
    }
}

impl Iterator for RowStream {
    type Item = Result<Tuple>;

    fn next(&mut self) -> Option<Result<Tuple>> {
        self.inner.next()
    }
}

impl Drop for RowStream {
    fn drop(&mut self) {
        // A dropped stream is a disconnected consumer: cancel the query
        // so exchange producers stop scanning, and — if the query was
        // still queued for admission — its ticket leaves the queue
        // immediately. Cancelling an already-finished query is a no-op.
        self.ctx.handle().cancel();
    }
}

impl fmt::Debug for RowStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowStream")
            .field("columns", &self.columns)
            .field("rows_scanned", &self.rows_scanned())
            .finish()
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// SELECT / provenance query.
    Rows(QueryResult),
    /// CREATE TABLE / CREATE TABLE AS (with the number of rows
    /// materialized).
    TableCreated { name: String, rows: usize },
    /// CREATE VIEW.
    ViewCreated { name: String },
    /// INSERT (rows inserted).
    Inserted(usize),
    /// DELETE (rows removed).
    Deleted(usize),
    /// UPDATE (rows changed).
    Updated(usize),
    /// DROP (whether anything was dropped — false only with IF EXISTS).
    Dropped(bool),
    /// EXPLAIN output: the physical execution plan (plus the optimized
    /// logical tree under `EXPLAIN VERBOSE`).
    Explain(String),
}

impl StatementResult {
    /// The rows of a SELECT result; panics for other statements (test and
    /// example convenience).
    pub fn expect_rows(self) -> QueryResult {
        match self {
            StatementResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType};

    fn result() -> QueryResult {
        QueryResult::new(
            &Schema::new(vec![
                Column::new("mid", DataType::Int),
                Column::new("text", DataType::Text),
            ]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::text("lorem ipsum ...")]),
                Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        )
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let t = result().to_table();
        assert!(t.contains("mid"), "{t}");
        assert!(t.contains("lorem ipsum ..."), "{t}");
        assert!(t.contains("null"), "{t}");
        assert!(t.contains("(2 rows)"), "{t}");
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let r = result();
        assert_eq!(r.column_index("TEXT"), Some(1));
        assert_eq!(r.column_index("nope"), None);
    }

    #[test]
    fn expect_rows_unwraps() {
        let r = StatementResult::Rows(result());
        assert_eq!(r.expect_rows().row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "expected rows")]
    fn expect_rows_panics_on_ddl() {
        StatementResult::Dropped(true).expect_rows();
    }
}
