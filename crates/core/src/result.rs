//! Query results and their textual rendering (the browser's result panel,
//! Figure 4 marker 5).

use std::fmt;

use perm_types::{Schema, Tuple, Value};

/// A materialized query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Tuple>,
}

impl QueryResult {
    pub fn new(schema: &Schema, rows: Vec<Tuple>) -> QueryResult {
        QueryResult {
            columns: schema.names().iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw values of one row.
    pub fn row(&self, i: usize) -> &[Value] {
        self.rows[i].values()
    }

    /// Index of a column by (case-insensitive) name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// psql-style ASCII table, NULLs rendered as `null` (as the paper's
    /// Figure 2 does).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();

        let mut out = String::new();
        // Header.
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:^w$} ", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("|"));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        out.push_str(&sep.join("+"));
        out.push('\n');
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!(" {:<w$} ", s, w = widths[i]))
                .collect();
            out.push_str(&cells.join("|"));
            out.push('\n');
        }
        out.push_str(&format!(
            "({} row{})\n",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        ));
        out
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// SELECT / provenance query.
    Rows(QueryResult),
    /// CREATE TABLE / CREATE TABLE AS (with the number of rows
    /// materialized).
    TableCreated { name: String, rows: usize },
    /// CREATE VIEW.
    ViewCreated { name: String },
    /// INSERT (rows inserted).
    Inserted(usize),
    /// DROP (whether anything was dropped — false only with IF EXISTS).
    Dropped(bool),
    /// EXPLAIN output: the optimized algebra tree.
    Explain(String),
}

impl StatementResult {
    /// The rows of a SELECT result; panics for other statements (test and
    /// example convenience).
    pub fn expect_rows(self) -> QueryResult {
        match self {
            StatementResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType};

    fn result() -> QueryResult {
        QueryResult::new(
            &Schema::new(vec![
                Column::new("mid", DataType::Int),
                Column::new("text", DataType::Text),
            ]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::text("lorem ipsum ...")]),
                Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        )
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let t = result().to_table();
        assert!(t.contains("mid"), "{t}");
        assert!(t.contains("lorem ipsum ..."), "{t}");
        assert!(t.contains("null"), "{t}");
        assert!(t.contains("(2 rows)"), "{t}");
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let r = result();
        assert_eq!(r.column_index("TEXT"), Some(1));
        assert_eq!(r.column_index("nope"), None);
    }

    #[test]
    fn expect_rows_unwraps() {
        let r = StatementResult::Rows(result());
        assert_eq!(r.expect_rows().row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "expected rows")]
    fn expect_rows_panics_on_ddl() {
        StatementResult::Dropped(true).expect_rows();
    }
}
