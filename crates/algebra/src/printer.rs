//! ASCII rendering of algebra trees.
//!
//! The Perm-browser (paper Figure 4, markers 3 and 4) displays the algebra
//! tree of the original query next to the tree of the rewritten provenance
//! query; this module produces those trees.

use crate::plan::LogicalPlan;

/// Render a plan as an indented ASCII tree.
pub fn plan_tree(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, "", true, false, &mut out);
    out
}

/// Like [`plan_tree`], but annotating every node with its output schema —
/// useful to see where provenance attributes enter the plan.
pub fn plan_tree_with_schema(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, "", true, true, &mut out);
    out
}

fn render(plan: &LogicalPlan, prefix: &str, is_last: bool, schemas: bool, out: &mut String) {
    render_node(plan, "", prefix, is_last, schemas, out);
}

/// `line_prefix` is what precedes this node's connector; the root passes an
/// empty prefix and no connector.
fn render_node(
    plan: &LogicalPlan,
    line_prefix: &str,
    _unused: &str,
    is_last: bool,
    schemas: bool,
    out: &mut String,
) {
    let is_root = out.is_empty();
    let connector = if is_root {
        ""
    } else if is_last {
        "└── "
    } else {
        "├── "
    };
    out.push_str(line_prefix);
    out.push_str(connector);
    out.push_str(&describe(plan));
    if schemas {
        out.push_str(&format!("  {}", plan.schema()));
    }
    out.push('\n');

    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{line_prefix}    ")
    } else {
        format!("{line_prefix}│   ")
    };
    let children = plan.children();
    let n = children.len();
    for (i, child) in children.into_iter().enumerate() {
        render_node(child, &child_prefix, "", i == n - 1, schemas, out);
    }
}

/// One-line operator description including its key expressions.
fn describe(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan {
            table,
            provenance_cols,
            ..
        } => {
            if provenance_cols.is_empty() {
                format!("Scan({table})")
            } else {
                format!("Scan({table}) [provenance cols: {provenance_cols:?}]")
            }
        }
        LogicalPlan::Values { rows, .. } => format!("Values({} rows)", rows.len()),
        LogicalPlan::Project { exprs, .. } => {
            let rendered: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            format!("Project [{}]", rendered.join(", "))
        }
        LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
        LogicalPlan::Join {
            kind, condition, ..
        } => match condition {
            Some(c) => format!("{}Join on {c}", kind.name()),
            None => format!("{}Join", kind.name()),
        },
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
            let a: Vec<String> = aggs.iter().map(|c| c.to_string()).collect();
            format!("Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "))
        }
        LogicalPlan::Distinct { .. } => "Distinct".into(),
        LogicalPlan::SetOp { op, all, .. } => {
            format!("{}{}", op.name(), if *all { "All" } else { "" })
        }
        LogicalPlan::Sort { keys, .. } => {
            let k: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                .collect();
            format!("Sort [{}]", k.join(", "))
        }
        LogicalPlan::Limit { limit, offset, .. } => match limit {
            Some(l) => format!("Limit {l} offset {offset}"),
            None => format!("Offset {offset}"),
        },
        LogicalPlan::Boundary { .. } => plan.node_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::plan::JoinType;
    use perm_types::{Column, DataType, Schema, Value};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(vec![Column::new("x", DataType::Int).with_qualifier(name)]),
            provenance_cols: vec![],
        }
    }

    #[test]
    fn single_node() {
        assert_eq!(plan_tree(&scan("t")), "Scan(t)\n");
    }

    #[test]
    fn tree_draws_branches() {
        let join = LogicalPlan::join(
            scan("a"),
            scan("b"),
            JoinType::Inner,
            Some(ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1))),
        )
        .unwrap();
        let top = LogicalPlan::filter(join, ScalarExpr::Literal(Value::Bool(true)));
        let t = plan_tree(&top);
        assert!(t.starts_with("Filter true\n"), "{t}");
        assert!(t.contains("InnerJoin on (#0 = #1)"), "{t}");
        assert!(t.contains("├── Scan(a)"), "{t}");
        assert!(t.contains("└── Scan(b)"), "{t}");
    }

    #[test]
    fn schema_annotation() {
        let t = plan_tree_with_schema(&scan("t"));
        assert!(t.contains("(t.x: int)"), "{t}");
    }
}
