//! Algebra → SQL deparser.
//!
//! Perm presents the rewritten provenance query *as an SQL statement*
//! (paper Figure 4, marker 2): because the rewrite produces an ordinary
//! relational query, it has an ordinary SQL rendering. This module converts
//! any [`LogicalPlan`] back to executable SQL.
//!
//! Every intermediate relation is wrapped in a derived table with an
//! explicit column-alias list (`(… ) AS t3(c1, c2, …)`), which makes the
//! output unambiguous even when provenance attributes duplicate names
//! (e.g. self-joins).

use std::collections::HashMap;

use perm_types::Value;

use crate::expr::{BinOp, ScalarExpr, SubqueryKind, UnOp};
use crate::plan::{JoinType, LogicalPlan, SetOpType};

/// Render a plan as a SQL `SELECT` statement.
pub fn deparse(plan: &LogicalPlan) -> String {
    let mut d = Deparser { next_alias: 0 };
    d.select_of(plan).sql
}

struct Deparser {
    next_alias: usize,
}

/// A deparsed relation: a full `SELECT …` statement plus the column names
/// it exposes (always unique).
struct Rel {
    sql: String,
    names: Vec<String>,
}

impl Deparser {
    fn alias(&mut self) -> String {
        self.next_alias += 1;
        format!("t{}", self.next_alias)
    }

    /// Render `plan` as a from-item `… AS tN(c1, …)`, returning the
    /// from-item SQL, its alias and the (unique) column names it exposes.
    fn render_from_item(&mut self, plan: &LogicalPlan) -> (String, String, Vec<String>) {
        match plan {
            LogicalPlan::Scan { table, schema, .. } => {
                let alias = self.alias();
                let names = unique_names(&schema.names());
                let sql = format!("{table} AS {alias}({})", names.join(", "));
                (sql, alias, names)
            }
            other => {
                let rel = self.select_of(other);
                let alias = self.alias();
                (
                    format!("({}) AS {alias}({})", rel.sql, rel.names.join(", ")),
                    alias,
                    rel.names,
                )
            }
        }
    }

    /// Render `plan` as a complete SELECT statement.
    fn select_of(&mut self, plan: &LogicalPlan) -> Rel {
        match plan {
            LogicalPlan::Scan { schema, .. } => {
                let (fi, _alias, names) = self.render_from_item(plan);
                Rel {
                    sql: format!("SELECT * FROM {fi}"),
                    names: {
                        let _ = schema;
                        names
                    },
                }
            }
            LogicalPlan::Values { rows, schema } => {
                let names = unique_names(&schema.names());
                if schema.is_empty() {
                    // A zero-column single row: SELECT with no FROM.
                    return Rel {
                        sql: "SELECT 1 AS one".into(),
                        names: vec!["one".into()],
                    };
                }
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> =
                            r.iter().map(|e| render_expr(e, &[], self)).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                let alias = self.alias();
                Rel {
                    sql: format!(
                        "SELECT * FROM (VALUES {}) AS {alias}({})",
                        rendered.join(", "),
                        names.join(", ")
                    ),
                    names,
                }
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let (fi, _alias, in_names) = self.render_from_item(input);
                let out_names = unique_names(&schema.names());
                let items: Vec<String> = exprs
                    .iter()
                    .zip(&out_names)
                    .map(|(e, n)| format!("{} AS {n}", render_expr(e, &in_names, self)))
                    .collect();
                Rel {
                    sql: format!("SELECT {} FROM {fi}", items.join(", ")),
                    names: out_names,
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let (fi, _alias, names) = self.render_from_item(input);
                Rel {
                    sql: format!(
                        "SELECT * FROM {fi} WHERE {}",
                        render_expr(predicate, &names, self)
                    ),
                    names,
                }
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                condition,
                ..
            } => {
                let (lfi, lalias, lnames) = self.render_from_item(left);
                let (rfi, ralias, rnames) = self.render_from_item(right);
                // Qualified references are unambiguous even when both
                // sides expose the same column names (e.g. provenance
                // attributes of a self-join).
                let mut qualified: Vec<String> =
                    lnames.iter().map(|n| format!("{lalias}.{n}")).collect();
                qualified.extend(rnames.iter().map(|n| format!("{ralias}.{n}")));
                let mut all: Vec<&str> = lnames.iter().map(String::as_str).collect();
                all.extend(rnames.iter().map(String::as_str));
                let out_names = unique_names(&all);
                let kw = match kind {
                    JoinType::Inner => "JOIN",
                    JoinType::Left => "LEFT JOIN",
                    JoinType::Full => "FULL JOIN",
                    JoinType::Cross => "CROSS JOIN",
                    // Semi/Anti joins have no direct SQL spelling; render
                    // as EXISTS / NOT EXISTS.
                    JoinType::Semi | JoinType::Anti => {
                        let cond = condition
                            .as_ref()
                            .map(|c| render_expr(c, &qualified, self))
                            .unwrap_or_else(|| "true".into());
                        let neg = if matches!(kind, JoinType::Anti) {
                            "NOT "
                        } else {
                            ""
                        };
                        return Rel {
                            sql: format!(
                                "SELECT * FROM {lfi} WHERE {neg}EXISTS \
                                 (SELECT 1 FROM {rfi} WHERE {cond})"
                            ),
                            names: lnames,
                        };
                    }
                };
                let items: Vec<String> = qualified
                    .iter()
                    .zip(&out_names)
                    .map(|(q, n)| format!("{q} AS {n}"))
                    .collect();
                let on = match condition {
                    Some(c) => format!(" ON {}", render_expr(c, &qualified, self)),
                    None => String::new(),
                };
                Rel {
                    sql: format!("SELECT {} FROM {lfi} {kw} {rfi}{on}", items.join(", ")),
                    names: out_names,
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                let (fi, _alias, in_names) = self.render_from_item(input);
                let out_names = unique_names(&schema.names());
                let mut items = Vec::new();
                for (g, n) in group_by.iter().zip(&out_names) {
                    items.push(format!("{} AS {n}", render_expr(g, &in_names, self)));
                }
                for (a, n) in aggs.iter().zip(out_names.iter().skip(group_by.len())) {
                    let arg = match &a.arg {
                        Some(e) => format!(
                            "{}{}",
                            if a.distinct { "DISTINCT " } else { "" },
                            render_expr(e, &in_names, self)
                        ),
                        None => "*".into(),
                    };
                    items.push(format!("{}({arg}) AS {n}", a.func.name()));
                }
                let group_clause = if group_by.is_empty() {
                    String::new()
                } else {
                    let gs: Vec<String> = group_by
                        .iter()
                        .map(|g| render_expr(g, &in_names, self))
                        .collect();
                    format!(" GROUP BY {}", gs.join(", "))
                };
                Rel {
                    sql: format!("SELECT {} FROM {fi}{group_clause}", items.join(", ")),
                    names: out_names,
                }
            }
            LogicalPlan::Distinct { input } => {
                let (fi, _alias, names) = self.render_from_item(input);
                Rel {
                    sql: format!("SELECT DISTINCT * FROM {fi}"),
                    names,
                }
            }
            LogicalPlan::SetOp {
                op,
                all,
                left,
                right,
                ..
            } => {
                let l = self.select_of(left);
                let r = self.select_of(right);
                let kw = match op {
                    SetOpType::Union => "UNION",
                    SetOpType::Intersect => "INTERSECT",
                    SetOpType::Except => "EXCEPT",
                };
                let all_kw = if *all { " ALL" } else { "" };
                Rel {
                    sql: format!("({}) {kw}{all_kw} ({})", l.sql, r.sql),
                    names: l.names,
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let (fi, _alias, names) = self.render_from_item(input);
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{}{}",
                            render_expr(&k.expr, &names, self),
                            if k.desc { " DESC" } else { "" }
                        )
                    })
                    .collect();
                Rel {
                    sql: format!("SELECT * FROM {fi} ORDER BY {}", ks.join(", ")),
                    names,
                }
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let (fi, _alias, names) = self.render_from_item(input);
                let mut sql = format!("SELECT * FROM {fi}");
                if let Some(l) = limit {
                    sql.push_str(&format!(" LIMIT {l}"));
                }
                if *offset > 0 {
                    sql.push_str(&format!(" OFFSET {offset}"));
                }
                Rel { sql, names }
            }
            LogicalPlan::Boundary { input, name, kind } => {
                // Boundaries are SQL-PLE FROM-modifiers; render the marker
                // as a trailing comment so the output stays executable SQL.
                let rel = self.select_of(input);
                let marker = match kind {
                    crate::plan::BoundaryKind::BaseRelation => {
                        format!(" /* {name} BASERELATION */")
                    }
                    crate::plan::BoundaryKind::External { attrs } => {
                        format!(" /* {name} PROVENANCE {attrs:?} */")
                    }
                };
                Rel {
                    sql: format!("{}{marker}", rel.sql),
                    names: rel.names,
                }
            }
        }
    }
}

/// Make a list of column names unique by suffixing duplicates with `_2`,
/// `_3`, …, and sanitize empty names.
fn unique_names(names: &[&str]) -> Vec<String> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    names
        .iter()
        .map(|n| {
            let base = if n.is_empty() || *n == "?column?" {
                "col".to_string()
            } else {
                n.to_string()
            };
            let count = seen.entry(base.clone()).or_insert(0);
            *count += 1;
            if *count == 1 {
                base
            } else {
                format!("{base}_{count}")
            }
        })
        .collect()
}

/// Render a bound expression against its input's column names.
fn render_expr(e: &ScalarExpr, names: &[String], d: &mut Deparser) -> String {
    match e {
        ScalarExpr::Literal(v) => render_value(v),
        ScalarExpr::Column(i) => names.get(*i).cloned().unwrap_or_else(|| format!("_c{i}")),
        ScalarExpr::OuterColumn { levels_up, index } => {
            format!("outer_{levels_up}_{index}")
        }
        ScalarExpr::Binary { op, left, right } => {
            let l = render_expr(left, names, d);
            let r = render_expr(right, names, d);
            match op {
                BinOp::NotDistinctFrom => format!("({l} IS NOT DISTINCT FROM {r})"),
                BinOp::DistinctFrom => format!("({l} IS DISTINCT FROM {r})"),
                _ => format!("({l} {} {r})", op.sql()),
            }
        }
        ScalarExpr::Unary { op, expr } => {
            let inner = render_expr(expr, names, d);
            match op {
                UnOp::Not => format!("(NOT {inner})"),
                UnOp::Neg => format!("(-{inner})"),
            }
        }
        ScalarExpr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            render_expr(expr, names, d),
            if *negated { "NOT " } else { "" }
        ),
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            render_expr(expr, names, d),
            if *negated { "NOT " } else { "" },
            render_expr(pattern, names, d)
        ),
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(|x| render_expr(x, names, d)).collect();
            format!(
                "({} {}IN ({}))",
                render_expr(expr, names, d),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        ScalarExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                s.push_str(&format!(" {}", render_expr(o, names, d)));
            }
            for (c, r) in branches {
                s.push_str(&format!(
                    " WHEN {} THEN {}",
                    render_expr(c, names, d),
                    render_expr(r, names, d)
                ));
            }
            if let Some(el) = else_branch {
                s.push_str(&format!(" ELSE {}", render_expr(el, names, d)));
            }
            s.push_str(" END");
            s
        }
        ScalarExpr::Cast { expr, ty } => {
            format!("CAST({} AS {ty})", render_expr(expr, names, d))
        }
        ScalarExpr::ScalarFn { func, args } => {
            let rendered: Vec<String> = args.iter().map(|a| render_expr(a, names, d)).collect();
            format!("{}({})", func.name(), rendered.join(", "))
        }
        ScalarExpr::Subquery(sq) => {
            let inner = d.select_of(&sq.plan).sql;
            let neg = if sq.negated { "NOT " } else { "" };
            match sq.kind {
                SubqueryKind::Scalar => format!("({inner})"),
                SubqueryKind::Exists => format!("{neg}EXISTS ({inner})"),
                SubqueryKind::In => {
                    let op = render_expr(sq.operand.as_deref().expect("IN has operand"), names, d);
                    format!("({op} {neg}IN ({inner}))")
                }
            }
        }
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use perm_types::{Column, DataType, Schema};

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(
                cols.iter()
                    .map(|c| Column::new(*c, DataType::Int).with_qualifier(name))
                    .collect(),
            ),
            provenance_cols: vec![],
        }
    }

    #[test]
    fn scan_renders_as_select_star() {
        let sql = deparse(&scan("messages", &["mid", "text"]));
        assert_eq!(sql, "SELECT * FROM messages AS t1(mid, text)");
    }

    #[test]
    fn filter_and_project() {
        let plan = LogicalPlan::project_positions(
            LogicalPlan::filter(
                scan("t", &["a", "b"]),
                ScalarExpr::binary(
                    BinOp::Gt,
                    ScalarExpr::Column(0),
                    ScalarExpr::Literal(Value::Int(5)),
                ),
            ),
            &[1],
        );
        let sql = deparse(&plan);
        assert!(sql.contains("WHERE (a > 5)"), "{sql}");
        assert!(sql.contains("SELECT b AS b"), "{sql}");
    }

    #[test]
    fn duplicate_names_get_suffixes() {
        let join = LogicalPlan::join(
            scan("a", &["id"]),
            scan("b", &["id"]),
            JoinType::Inner,
            Some(ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1))),
        )
        .unwrap();
        let sql = deparse(&join);
        assert!(sql.contains("ON (t1.id = t2.id)"), "{sql}");
        assert!(sql.contains("AS id_2"), "{sql}");
    }

    #[test]
    fn string_literals_escape_quotes() {
        assert_eq!(render_value(&Value::text("it's")), "'it''s'");
        assert_eq!(render_value(&Value::Null), "NULL");
    }

    #[test]
    fn set_op_renders_both_sides() {
        let u = LogicalPlan::SetOp {
            op: SetOpType::Union,
            all: false,
            left: Box::new(scan("a", &["x"])),
            right: Box::new(scan("b", &["x"])),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
        };
        let sql = deparse(&u);
        assert!(sql.contains(") UNION ("), "{sql}");
    }
}
