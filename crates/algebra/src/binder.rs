//! The analyzer/binder: SQL AST → bound [`LogicalPlan`].
//!
//! This is the "Parser & Analyzer" stage of the paper's Figure 3 pipeline.
//! It performs name resolution (with nested-query scopes), type checking,
//! **view unfolding**, implicit-coercion insertion for set operations,
//! aggregation analysis, and — when a `SELECT PROVENANCE` clause is present —
//! hands the bound subtree to the provenance rewriter
//! ([`ProvenanceTransform`]) exactly where Figure 3's "provenance rewrite"
//! box sits.
//!
//! SQL-PLE FROM-item modifiers become [`LogicalPlan::Boundary`] nodes:
//! `BASERELATION` stops the rewrite at that subtree, `PROVENANCE (attrs)`
//! declares external provenance attributes.

use perm_sql::{
    BinaryOp, Expr as AstExpr, JoinKind, ObjectKind, OrderItem, Query, QueryBody, Select,
    SelectItem, SetOpKind, Statement, TableRef, UnaryOp,
};
use perm_types::{Column, DataType, PermError, Result, Schema, Value};

use crate::catalog::{CatalogProvider, ProvenanceTransform};
use crate::expr::{
    AggCall, AggFunc, BinOp, ScalarExpr, ScalarFunc, SubqueryExpr, SubqueryKind, UnOp,
};
use crate::plan::{BoundaryKind, JoinType, LogicalPlan, SetOpType, SortKey};
use crate::typecheck::{agg_type, expr_type};

/// Maximum view-unfolding depth (guards against recursive views).
const MAX_VIEW_DEPTH: usize = 32;

/// The binder. Holds the catalog, the (optional) provenance rewriter, and
/// the stack of enclosing scopes for correlated subqueries.
pub struct Binder<'a> {
    catalog: &'a dyn CatalogProvider,
    provenance: Option<&'a dyn ProvenanceTransform>,
    /// Enclosing schemas, innermost last.
    outer: Vec<Schema>,
    view_depth: usize,
    /// Provenance-attribute positions of the most recently completed
    /// provenance rewrite (used by the eager-materialization path to record
    /// catalog metadata).
    last_provenance: Option<Vec<usize>>,
}

impl<'a> Binder<'a> {
    /// A binder that rejects `SELECT PROVENANCE` (no rewriter wired in).
    pub fn new(catalog: &'a dyn CatalogProvider) -> Binder<'a> {
        Binder {
            catalog,
            provenance: None,
            outer: vec![],
            view_depth: 0,
            last_provenance: None,
        }
    }

    /// A binder with the provenance rewriter attached (the full Figure 3
    /// pipeline).
    pub fn with_provenance(
        catalog: &'a dyn CatalogProvider,
        transform: &'a dyn ProvenanceTransform,
    ) -> Binder<'a> {
        Binder {
            catalog,
            provenance: Some(transform),
            outer: vec![],
            view_depth: 0,
            last_provenance: None,
        }
    }

    /// Provenance attributes of the last `SELECT PROVENANCE` rewrite bound,
    /// as positions into that plan's output schema.
    pub fn last_provenance_attrs(&self) -> Option<&[usize]> {
        self.last_provenance.as_deref()
    }

    fn outer_refs(&self) -> Vec<&Schema> {
        self.outer.iter().rev().collect()
    }

    fn check_type(&self, e: &ScalarExpr, schema: &Schema) -> Result<DataType> {
        expr_type(e, schema, &self.outer_refs())
    }

    fn expect_bool(&self, e: &ScalarExpr, schema: &Schema, ctx: &str) -> Result<()> {
        let t = self.check_type(e, schema)?;
        if t == DataType::Bool || t == DataType::Unknown {
            Ok(())
        } else {
            Err(PermError::Analysis(format!(
                "{ctx} must be a boolean expression, got {t}"
            )))
        }
    }

    // ==================================================================
    // Queries
    // ==================================================================

    /// Bind a full query (set-operation tree plus ORDER BY / LIMIT).
    pub fn bind_query(&mut self, q: &Query) -> Result<LogicalPlan> {
        let (mut plan, sorted) = match &q.body {
            // Plain selects get the extended ORDER BY resolution (hidden
            // sort columns for non-selected input columns).
            QueryBody::Select(s) => self.bind_select_with_order(s, &q.order_by)?,
            body => (self.bind_query_body(body)?, false),
        };
        if !q.order_by.is_empty() && !sorted {
            plan = self.bind_order_by(plan, &q.order_by)?;
        }
        if q.limit.is_some() || q.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit: q.limit,
                offset: q.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }

    fn bind_query_body(&mut self, body: &QueryBody) -> Result<LogicalPlan> {
        match body {
            QueryBody::Select(s) => self.bind_select(s),
            QueryBody::SetOp {
                op,
                all,
                left,
                right,
            } => {
                // As in Perm, `SELECT PROVENANCE … UNION …` computes the
                // provenance of the *whole* set operation (Figure 2 shows
                // exactly this for q1): a provenance clause on the leftmost
                // select core governs the set-operation tree.
                if let Some(clause) = leftmost_provenance(body) {
                    let clause = clause.clone();
                    let stripped = strip_leftmost_provenance(body);
                    let plan = self.bind_query_body(&stripped)?;
                    let transform = self.provenance.ok_or_else(|| {
                        PermError::Rewrite(
                            "SELECT PROVENANCE is not available: no provenance rewriter attached"
                                .into(),
                        )
                    })?;
                    let original = plan.schema().clone();
                    let rewritten = transform.rewrite_provenance(plan, clause.semantics)?;
                    crate::verify::verify_provenance_schema(
                        &original,
                        &rewritten.plan,
                        &rewritten.prov_attrs,
                        "provenance-rewrite",
                    )?;
                    self.last_provenance = Some(rewritten.prov_attrs);
                    return Ok(rewritten.plan);
                }
                let l = self.bind_query_body(left)?;
                let r = self.bind_query_body(right)?;
                self.bind_setop(*op, *all, l, r)
            }
        }
    }

    fn bind_setop(
        &mut self,
        op: SetOpKind,
        all: bool,
        left: LogicalPlan,
        right: LogicalPlan,
    ) -> Result<LogicalPlan> {
        let (ln, rn) = (left.arity(), right.arity());
        if ln != rn {
            return Err(PermError::Analysis(format!(
                "each side of a set operation must have the same number of columns \
                 ({ln} vs {rn})"
            )));
        }
        // Unify column types; remember which sides need casts.
        let mut unified = Vec::with_capacity(ln);
        for i in 0..ln {
            let lt = left.schema().column(i).ty;
            let rt = right.schema().column(i).ty;
            unified.push(lt.unify(rt).map_err(|_| {
                PermError::Analysis(format!(
                    "set operation column {} has incompatible types {lt} and {rt}",
                    i + 1
                ))
            })?);
        }
        let left = cast_to(left, &unified);
        let right = cast_to(right, &unified);
        // Output schema: names from the left side, unqualified; nullable if
        // either side is nullable.
        let columns: Vec<Column> = (0..ln)
            .map(|i| {
                let lc = left.schema().column(i);
                let rc = right.schema().column(i);
                let mut c = Column::new(lc.name.clone(), unified[i]);
                c.nullable = lc.nullable || rc.nullable;
                c
            })
            .collect();
        let kind = match op {
            SetOpKind::Union => SetOpType::Union,
            SetOpKind::Intersect => SetOpType::Intersect,
            SetOpKind::Except => SetOpType::Except,
        };
        Ok(LogicalPlan::SetOp {
            op: kind,
            all,
            left: Box::new(left),
            right: Box::new(right),
            schema: Schema::new(columns),
        })
    }

    fn bind_order_by(&mut self, plan: LogicalPlan, items: &[OrderItem]) -> Result<LogicalPlan> {
        let schema = plan.schema().clone();
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            // `ORDER BY 2` means output position 2 (1-based), as in SQL.
            let expr = if let AstExpr::Literal(Value::Int(pos)) = &item.expr {
                let pos = *pos;
                if pos < 1 || pos as usize > schema.len() {
                    return Err(PermError::Analysis(format!(
                        "ORDER BY position {pos} is out of range (1..{})",
                        schema.len()
                    )));
                }
                ScalarExpr::Column(pos as usize - 1)
            } else {
                let e = self.bind_expr(&item.expr, &schema)?;
                self.check_type(&e, &schema)?;
                e
            };
            keys.push(SortKey {
                expr,
                desc: item.desc,
            });
        }
        Ok(LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        })
    }

    // ==================================================================
    // Select cores
    // ==================================================================

    /// Steps 1–3 of select binding: FROM, WHERE, aggregation analysis.
    /// Returns the plan *before* the SELECT-list projection plus the bound
    /// select items.
    fn bind_select_parts(
        &mut self,
        s: &Select,
    ) -> Result<(LogicalPlan, Vec<(ScalarExpr, Column)>)> {
        // 1. FROM.
        let mut plan = self.bind_from(&s.from)?;

        // 2. WHERE.
        if let Some(pred) = &s.where_clause {
            let schema = plan.schema().clone();
            let bound = self.bind_expr(pred, &schema)?;
            self.expect_bool(&bound, &schema, "WHERE clause")?;
            plan = LogicalPlan::filter(plan, bound);
        }

        // 3. Aggregation.
        let has_agg = !s.group_by.is_empty()
            || s.items.iter().any(select_item_has_aggregate)
            || s.having.as_ref().is_some_and(expr_has_aggregate);

        if has_agg {
            self.bind_aggregate_select(plan, s)
        } else {
            if s.having.is_some() {
                return Err(PermError::Analysis(
                    "HAVING requires GROUP BY or an aggregate function".into(),
                ));
            }
            let schema = plan.schema().clone();
            let items = self.bind_select_items(&s.items, &schema)?;
            Ok((plan, items))
        }
    }

    fn bind_select(&mut self, s: &Select) -> Result<LogicalPlan> {
        let (mut plan, items) = self.bind_select_parts(s)?;

        // 4. SELECT-list projection.
        let (exprs, columns): (Vec<ScalarExpr>, Vec<Column>) = items.into_iter().unzip();
        plan = LogicalPlan::project(plan, exprs, columns);

        // 5. DISTINCT.
        if s.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        // 6. SQL-PLE: SELECT PROVENANCE — invoke the rewriter (Figure 3).
        if let Some(clause) = &s.provenance {
            let transform = self.provenance.ok_or_else(|| {
                PermError::Rewrite(
                    "SELECT PROVENANCE is not available: no provenance rewriter attached".into(),
                )
            })?;
            let original = plan.schema().clone();
            let rewritten = transform.rewrite_provenance(plan, clause.semantics)?;
            crate::verify::verify_provenance_schema(
                &original,
                &rewritten.plan,
                &rewritten.prov_attrs,
                "provenance-rewrite",
            )?;
            self.last_provenance = Some(rewritten.prov_attrs);
            plan = rewritten.plan;
        }

        Ok(plan)
    }

    /// Bind a select core together with its query-level ORDER BY, allowing
    /// sort keys to reference non-selected columns of the select's input
    /// (standard SQL). Such keys are carried as *hidden* projection columns
    /// and stripped after the sort.
    ///
    /// Falls back to output-schema-only resolution (returning
    /// `sorted = false`) for `DISTINCT` and `SELECT PROVENANCE` queries,
    /// where hidden columns would change semantics.
    fn bind_select_with_order(
        &mut self,
        s: &Select,
        order: &[OrderItem],
    ) -> Result<(LogicalPlan, bool)> {
        if order.is_empty() || s.distinct || s.provenance.is_some() {
            return Ok((self.bind_select(s)?, false));
        }
        let (pre, items) = self.bind_select_parts(s)?;
        let n = items.len();
        let out_schema = Schema::new(items.iter().map(|(_, c)| c.clone()).collect());
        let pre_schema = pre.schema().clone();
        // Select-item ASTs, for `ORDER BY <same expression>` matching
        // (e.g. `ORDER BY count(*)` when `count(*)` is selected).
        let item_asts: Vec<Option<&AstExpr>> = {
            let mut v = Vec::new();
            for it in &s.items {
                match it {
                    SelectItem::Expr { expr, .. } => v.push(Some(expr)),
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        // Wildcards expand to multiple items; positions
                        // after a wildcard cannot be AST-matched reliably,
                        // so stop collecting (name resolution still works).
                        v.clear();
                        break;
                    }
                }
            }
            if v.len() == s.items.len() {
                v
            } else {
                vec![None; items.len()]
            }
        };

        let mut hidden: Vec<(ScalarExpr, Column)> = Vec::new();
        let mut keys: Vec<SortKey> = Vec::new();
        for item in order {
            if let Some(i) = item_asts
                .iter()
                .position(|a| a.is_some_and(|a| a == &item.expr))
            {
                keys.push(SortKey {
                    expr: ScalarExpr::Column(i),
                    desc: item.desc,
                });
                continue;
            }
            let expr = if let AstExpr::Literal(Value::Int(pos)) = &item.expr {
                let pos = *pos;
                if pos < 1 || pos as usize > n {
                    return Err(PermError::Analysis(format!(
                        "ORDER BY position {pos} is out of range (1..{n})"
                    )));
                }
                ScalarExpr::Column(pos as usize - 1)
            } else {
                match self.bind_expr(&item.expr, &out_schema) {
                    Ok(e) => {
                        self.check_type(&e, &out_schema)?;
                        e
                    }
                    Err(output_err) => {
                        // Fall back to the pre-projection scope for plain
                        // column references (`ORDER BY uid` with uid not
                        // selected).
                        let AstExpr::Column { qualifier, name } = &item.expr else {
                            return Err(output_err);
                        };
                        let bound = self.resolve_column(qualifier.as_deref(), name, &pre_schema)?;
                        // Reuse a select item computing the same value.
                        if let Some(i) = items.iter().position(|(e, _)| *e == bound) {
                            ScalarExpr::Column(i)
                        } else if let Some(h) = hidden.iter().position(|(e, _)| *e == bound) {
                            ScalarExpr::Column(n + h)
                        } else {
                            let col = match &bound {
                                ScalarExpr::Column(i) => pre_schema.column(*i).clone(),
                                _ => Column::new(name.clone(), DataType::Unknown),
                            };
                            hidden.push((bound, col));
                            ScalarExpr::Column(n + hidden.len() - 1)
                        }
                    }
                }
            };
            keys.push(SortKey {
                expr,
                desc: item.desc,
            });
        }

        // Project (visible + hidden), sort, then strip the hidden columns.
        let mut exprs: Vec<ScalarExpr> = Vec::with_capacity(n + hidden.len());
        let mut columns: Vec<Column> = Vec::with_capacity(n + hidden.len());
        for (e, c) in items {
            exprs.push(e);
            columns.push(c);
        }
        for (e, c) in hidden {
            exprs.push(e);
            columns.push(c);
        }
        let strip = columns.len() > n;
        let mut plan = LogicalPlan::project(pre, exprs, columns);
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
        if strip {
            plan = LogicalPlan::project_positions(plan, &(0..n).collect::<Vec<_>>());
        }
        Ok((plan, true))
    }

    /// Bind the SELECT list of a non-aggregate query.
    fn bind_select_items(
        &mut self,
        items: &[SelectItem],
        schema: &Schema,
    ) -> Result<Vec<(ScalarExpr, Column)>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.iter().enumerate() {
                        out.push((ScalarExpr::Column(i), c.clone()));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let idxs = schema.indexes_for_qualifier(q);
                    if idxs.is_empty() {
                        return Err(PermError::Analysis(format!(
                            "relation '{q}' in '{q}.*' not found in FROM clause"
                        )));
                    }
                    for i in idxs {
                        out.push((ScalarExpr::Column(i), schema.column(i).clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, schema)?;
                    let ty = self.check_type(&bound, schema)?;
                    let col = output_column(alias.as_deref(), expr, &bound, schema, ty);
                    out.push((bound, col));
                }
            }
        }
        Ok(out)
    }

    /// Bind an aggregate select: build the [`LogicalPlan::Aggregate`] node
    /// and return select-list expressions bound over its output.
    fn bind_aggregate_select(
        &mut self,
        input: LogicalPlan,
        s: &Select,
    ) -> Result<(LogicalPlan, Vec<(ScalarExpr, Column)>)> {
        let input_schema = input.schema().clone();

        // Bind GROUP BY expressions over the aggregate's input.
        let mut agg = AggBinding {
            input_schema: input_schema.clone(),
            group_ast: s.group_by.to_vec(),
            group_exprs: Vec::new(),
            group_cols: Vec::new(),
            aggs: Vec::new(),
        };
        for g in &s.group_by {
            let bound = self.bind_expr(g, &input_schema)?;
            let ty = self.check_type(&bound, &input_schema)?;
            let col = match &bound {
                ScalarExpr::Column(i) => input_schema.column(*i).clone(),
                _ => Column::new(display_name(g), ty),
            };
            agg.group_exprs.push(bound);
            agg.group_cols.push(col);
        }

        // Bind select items and HAVING over the aggregate scope, collecting
        // aggregate calls on the fly.
        let mut items: Vec<(AstExpr, Option<String>, ScalarExpr)> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    // Expand to all input columns; each must be grouped (or
                    // becomes an implicit any_value).
                    for (i, c) in input_schema.iter().enumerate() {
                        let ast = AstExpr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        };
                        let bound = self.bind_agg_scoped(
                            &ScalarExpr::Column(i),
                            &AstExpr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            &mut agg,
                        )?;
                        items.push((ast, None, bound));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let idxs = input_schema.indexes_for_qualifier(q);
                    if idxs.is_empty() {
                        return Err(PermError::Analysis(format!(
                            "relation '{q}' in '{q}.*' not found in FROM clause"
                        )));
                    }
                    for i in idxs {
                        let c = input_schema.column(i);
                        let ast = AstExpr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        };
                        let bound = self.bind_agg_scoped(&ScalarExpr::Column(i), &ast, &mut agg)?;
                        items.push((ast, None, bound));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_agg_expr(expr, &mut agg)?;
                    items.push((expr.clone(), alias.clone(), bound));
                }
            }
        }
        let having = s
            .having
            .as_ref()
            .map(|h| self.bind_agg_expr(h, &mut agg))
            .transpose()?;

        // Assemble the Aggregate node's schema: group columns, then one
        // column per aggregate call.
        let mut columns = agg.group_cols.clone();
        for (_, call, col) in &agg.aggs {
            let _ = call; // column already carries the computed type
            columns.push(col.clone());
        }
        let agg_schema = Schema::new(columns);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: agg.group_exprs.clone(),
            aggs: agg.aggs.iter().map(|(_, c, _)| c.clone()).collect(),
            schema: agg_schema.clone(),
        };

        // HAVING sits above the aggregate.
        let plan = match having {
            Some(h) => {
                self.expect_bool(&h, &agg_schema, "HAVING clause")?;
                LogicalPlan::filter(plan, h)
            }
            None => plan,
        };

        // Produce select-list output with names.
        let out = items
            .into_iter()
            .map(|(ast, alias, bound)| {
                let ty = self.check_type(&bound, &agg_schema)?;
                let col = output_column(alias.as_deref(), &ast, &bound, &agg_schema, ty);
                Ok((bound, col))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok((plan, out))
    }

    /// Wrap an already-bound input column for the aggregate scope: grouped
    /// columns map to their group position, everything else becomes an
    /// implicit `any_value`.
    fn bind_agg_scoped(
        &mut self,
        bound_input: &ScalarExpr,
        ast: &AstExpr,
        agg: &mut AggBinding,
    ) -> Result<ScalarExpr> {
        if let Some(g) = agg.group_exprs.iter().position(|e| e == bound_input) {
            return Ok(ScalarExpr::Column(g));
        }
        self.add_any_value(ast, bound_input.clone(), agg)
    }

    /// Bind an expression in the aggregate output scope.
    fn bind_agg_expr(&mut self, e: &AstExpr, agg: &mut AggBinding) -> Result<ScalarExpr> {
        // A subtree structurally equal to a GROUP BY expression refers to
        // the group column.
        if let Some(i) = agg.group_ast.iter().position(|g| g == e) {
            return Ok(ScalarExpr::Column(i));
        }
        match e {
            AstExpr::Function { name, .. } if AggFunc::is_aggregate_name(name) => {
                self.bind_aggregate_call(e, agg)
            }
            AstExpr::Column { qualifier, name } => {
                // Resolve over the aggregate input, then map to the group
                // position if the same column is grouped.
                let bound = self.resolve_column(qualifier.as_deref(), name, &agg.input_schema)?;
                if let Some(g) = agg.group_exprs.iter().position(|ge| ge == &bound) {
                    return Ok(ScalarExpr::Column(g));
                }
                if matches!(bound, ScalarExpr::OuterColumn { .. }) {
                    // Correlated reference into an enclosing query.
                    return Ok(bound);
                }
                // Lenient non-grouped column: implicit any_value (see
                // AggFunc::AnyValue).
                self.add_any_value(e, bound, agg)
            }
            AstExpr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_agg_expr(left, agg)?;
                let r = self.bind_agg_expr(right, agg)?;
                bind_binary(*op, l, r)
            }
            AstExpr::Unary { op, expr } => {
                let inner = self.bind_agg_expr(expr, agg)?;
                Ok(bind_unary(*op, inner))
            }
            AstExpr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_agg_expr(expr, agg)?),
                negated: *negated,
            }),
            AstExpr::IsDistinctFrom {
                left,
                right,
                negated,
            } => {
                let l = self.bind_agg_expr(left, agg)?;
                let r = self.bind_agg_expr(right, agg)?;
                let op = if *negated {
                    BinOp::DistinctFrom
                } else {
                    BinOp::NotDistinctFrom
                };
                Ok(ScalarExpr::binary(op, l, r))
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.bind_agg_expr(expr, agg)?),
                pattern: Box::new(self.bind_agg_expr(pattern, agg)?),
                negated: *negated,
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_agg_expr(expr, agg)?;
                let lo = self.bind_agg_expr(low, agg)?;
                let hi = self.bind_agg_expr(high, agg)?;
                Ok(desugar_between(e, lo, hi, *negated))
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.bind_agg_expr(expr, agg)?),
                list: list
                    .iter()
                    .map(|x| self.bind_agg_expr(x, agg))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            AstExpr::Case {
                operand,
                branches,
                else_branch,
            } => Ok(ScalarExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.bind_agg_expr(o, agg).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind_agg_expr(c, agg)?, self.bind_agg_expr(r, agg)?)))
                    .collect::<Result<_>>()?,
                else_branch: else_branch
                    .as_ref()
                    .map(|x| self.bind_agg_expr(x, agg).map(Box::new))
                    .transpose()?,
            }),
            AstExpr::Cast { expr, ty } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.bind_agg_expr(expr, agg)?),
                ty: *ty,
            }),
            AstExpr::Function { name, args, .. } => {
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| PermError::Analysis(format!("unknown function '{name}'")))?;
                Ok(ScalarExpr::ScalarFn {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_agg_expr(a, agg))
                        .collect::<Result<_>>()?,
                })
            }
            AstExpr::InSubquery { .. } | AstExpr::Exists { .. } | AstExpr::ScalarSubquery(_) => {
                // Sublinks in the aggregate scope bind over the aggregate
                // *input* schema as their outer scope.
                let schema = agg.input_schema.clone();
                self.bind_expr(e, &schema)
            }
        }
    }

    /// Bind one aggregate function call and return its output position.
    fn bind_aggregate_call(&mut self, e: &AstExpr, agg: &mut AggBinding) -> Result<ScalarExpr> {
        let AstExpr::Function {
            name,
            args,
            distinct,
            star,
        } = e
        else {
            unreachable!("caller checked this is a function");
        };
        let func = AggFunc::from_name(name).expect("caller checked aggregate name");

        // Deduplicate structurally identical calls (count(*) used in both
        // SELECT and HAVING shares one computed column).
        if let Some(j) = agg.aggs.iter().position(|(ast, _, _)| ast == e) {
            return Ok(ScalarExpr::Column(agg.group_exprs.len() + j));
        }

        let arg = if *star {
            if func != AggFunc::Count {
                return Err(PermError::Analysis(format!("{name}(*) is not valid")));
            }
            None
        } else {
            if args.len() != 1 {
                return Err(PermError::Analysis(format!(
                    "{name}() takes exactly one argument, got {}",
                    args.len()
                )));
            }
            if expr_has_aggregate(&args[0]) {
                return Err(PermError::Analysis(
                    "aggregate calls cannot be nested".into(),
                ));
            }
            let schema = agg.input_schema.clone();
            Some(self.bind_expr(&args[0], &schema)?)
        };
        let call = AggCall {
            func,
            arg,
            distinct: *distinct,
        };
        let ty = agg_type(&call, &agg.input_schema, &self.outer_refs())?;
        let col = Column::new(func.name(), ty);
        agg.aggs.push((e.clone(), call, col));
        Ok(ScalarExpr::Column(
            agg.group_exprs.len() + agg.aggs.len() - 1,
        ))
    }

    fn add_any_value(
        &mut self,
        ast: &AstExpr,
        bound: ScalarExpr,
        agg: &mut AggBinding,
    ) -> Result<ScalarExpr> {
        // Reuse an existing implicit any_value over the same expression.
        if let Some(j) = agg
            .aggs
            .iter()
            .position(|(_, c, _)| c.func == AggFunc::AnyValue && c.arg.as_ref() == Some(&bound))
        {
            return Ok(ScalarExpr::Column(agg.group_exprs.len() + j));
        }
        let ty = self.check_type(&bound, &agg.input_schema)?;
        let name = match ast {
            AstExpr::Column { name, .. } => name.clone(),
            other => display_name(other),
        };
        let call = AggCall {
            func: AggFunc::AnyValue,
            arg: Some(bound),
            distinct: false,
        };
        agg.aggs.push((ast.clone(), call, Column::new(name, ty)));
        Ok(ScalarExpr::Column(
            agg.group_exprs.len() + agg.aggs.len() - 1,
        ))
    }

    // ==================================================================
    // FROM clause
    // ==================================================================

    fn bind_from(&mut self, items: &[TableRef]) -> Result<LogicalPlan> {
        if items.is_empty() {
            // `SELECT expr` without FROM scans one empty tuple.
            return Ok(LogicalPlan::empty_row());
        }
        let mut plan: Option<LogicalPlan> = None;
        for item in items {
            let bound = self.bind_table_ref(item)?;
            plan = Some(match plan {
                None => bound,
                Some(p) => LogicalPlan::join(p, bound, JoinType::Cross, None)?,
            });
        }
        Ok(plan.expect("at least one FROM item"))
    }

    fn bind_table_ref(&mut self, r: &TableRef) -> Result<LogicalPlan> {
        match r {
            TableRef::Relation {
                name,
                alias,
                column_aliases,
                modifiers,
            } => {
                let binding = alias.as_deref().unwrap_or(name);
                let plan = if let Some(meta) = self.catalog.base_table(name) {
                    LogicalPlan::Scan {
                        table: name.clone(),
                        schema: meta.schema.requalify(binding),
                        provenance_cols: meta.provenance_cols,
                    }
                } else if let Some(view_query) = self.catalog.view_definition(name) {
                    // View unfolding: bind the definition in a fresh scope
                    // (views cannot be correlated with the enclosing query).
                    if self.view_depth >= MAX_VIEW_DEPTH {
                        return Err(PermError::Analysis(format!(
                            "view nesting deeper than {MAX_VIEW_DEPTH} (recursive view '{name}'?)"
                        )));
                    }
                    self.view_depth += 1;
                    let saved = std::mem::take(&mut self.outer);
                    let bound = self.bind_query(&view_query);
                    self.outer = saved;
                    self.view_depth -= 1;
                    rename(bound?, binding)
                } else {
                    return Err(PermError::Analysis(format!(
                        "relation '{name}' does not exist"
                    )));
                };
                let plan = apply_column_aliases(plan, binding, column_aliases.as_deref())?;
                self.apply_modifiers(plan, binding, modifiers)
            }
            TableRef::Subquery {
                query,
                alias,
                column_aliases,
                modifiers,
            } => {
                // Derived tables are not correlated (no LATERAL).
                let saved = std::mem::take(&mut self.outer);
                let bound = self.bind_query(query);
                self.outer = saved;
                let plan = rename(bound?, alias);
                let plan = apply_column_aliases(plan, alias, column_aliases.as_deref())?;
                self.apply_modifiers(plan, alias, modifiers)
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                match kind {
                    JoinKind::Cross => LogicalPlan::join(l, r, JoinType::Cross, None),
                    JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
                        let combined = l.schema().join(r.schema());
                        let cond = on.as_ref().expect("parser guarantees ON");
                        let bound = self.bind_expr(cond, &combined)?;
                        self.expect_bool(&bound, &combined, "JOIN condition")?;
                        let jt = match kind {
                            JoinKind::Inner => JoinType::Inner,
                            JoinKind::Left => JoinType::Left,
                            JoinKind::Full => JoinType::Full,
                            _ => unreachable!(),
                        };
                        LogicalPlan::join(l, r, jt, Some(bound))
                    }
                    JoinKind::Right => {
                        // RIGHT JOIN is normalized to a LEFT JOIN with
                        // swapped inputs plus a reordering projection.
                        let (nl, nr) = (l.arity(), r.arity());
                        let combined = r.schema().join(l.schema());
                        let cond = on.as_ref().expect("parser guarantees ON");
                        let bound = self.bind_expr(cond, &combined)?;
                        self.expect_bool(&bound, &combined, "JOIN condition")?;
                        let swapped = LogicalPlan::join(r, l, JoinType::Left, Some(bound))?;
                        let order: Vec<usize> = (nr..nr + nl).chain(0..nr).collect();
                        Ok(LogicalPlan::project_positions(swapped, &order))
                    }
                }
            }
        }
    }

    /// Apply SQL-PLE FROM-item modifiers as [`LogicalPlan::Boundary`] nodes.
    fn apply_modifiers(
        &self,
        plan: LogicalPlan,
        binding: &str,
        modifiers: &perm_sql::FromModifiers,
    ) -> Result<LogicalPlan> {
        let mut plan = plan;
        if let Some(attrs) = &modifiers.provenance_attrs {
            let schema = plan.schema();
            let mut positions = Vec::with_capacity(attrs.len());
            for a in attrs {
                positions.push(schema.resolve(None, a).map_err(|_| {
                    PermError::Analysis(format!(
                        "provenance attribute '{a}' not found in FROM item '{binding}'"
                    ))
                })?);
            }
            plan = LogicalPlan::Boundary {
                input: Box::new(plan),
                name: binding.to_string(),
                kind: BoundaryKind::External { attrs: positions },
            };
        }
        if modifiers.baserelation {
            plan = LogicalPlan::Boundary {
                input: Box::new(plan),
                name: binding.to_string(),
                kind: BoundaryKind::BaseRelation,
            };
        }
        Ok(plan)
    }

    // ==================================================================
    // Expressions (non-aggregate scope)
    // ==================================================================

    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        schema: &Schema,
    ) -> Result<ScalarExpr> {
        if let Some(i) = schema.try_resolve(qualifier, name)? {
            return Ok(ScalarExpr::Column(i));
        }
        for (k, s) in self.outer.iter().rev().enumerate() {
            if let Some(i) = s.try_resolve(qualifier, name)? {
                return Ok(ScalarExpr::OuterColumn {
                    levels_up: k + 1,
                    index: i,
                });
            }
        }
        Err(PermError::Analysis(format!(
            "column '{}' does not exist",
            match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            }
        )))
    }

    /// Bind a scalar expression over `schema` (aggregates rejected).
    pub fn bind_expr(&mut self, e: &AstExpr, schema: &Schema) -> Result<ScalarExpr> {
        match e {
            AstExpr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            AstExpr::Column { qualifier, name } => {
                self.resolve_column(qualifier.as_deref(), name, schema)
            }
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_expr(left, schema)?;
                let r = self.bind_expr(right, schema)?;
                bind_binary(*op, l, r)
            }
            AstExpr::Unary { op, expr } => Ok(bind_unary(*op, self.bind_expr(expr, schema)?)),
            AstExpr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, schema)?),
                negated: *negated,
            }),
            AstExpr::IsDistinctFrom {
                left,
                right,
                negated,
            } => {
                let l = self.bind_expr(left, schema)?;
                let r = self.bind_expr(right, schema)?;
                let op = if *negated {
                    BinOp::DistinctFrom
                } else {
                    BinOp::NotDistinctFrom
                };
                Ok(ScalarExpr::binary(op, l, r))
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.bind_expr(expr, schema)?),
                pattern: Box::new(self.bind_expr(pattern, schema)?),
                negated: *negated,
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_expr(expr, schema)?;
                let lo = self.bind_expr(low, schema)?;
                let hi = self.bind_expr(high, schema)?;
                Ok(desugar_between(e, lo, hi, *negated))
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.bind_expr(expr, schema)?),
                list: list
                    .iter()
                    .map(|x| self.bind_expr(x, schema))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            AstExpr::Case {
                operand,
                branches,
                else_branch,
            } => Ok(ScalarExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.bind_expr(o, schema).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind_expr(c, schema)?, self.bind_expr(r, schema)?)))
                    .collect::<Result<_>>()?,
                else_branch: else_branch
                    .as_ref()
                    .map(|x| self.bind_expr(x, schema).map(Box::new))
                    .transpose()?,
            }),
            AstExpr::Cast { expr, ty } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.bind_expr(expr, schema)?),
                ty: *ty,
            }),
            AstExpr::Function { name, args, .. } => {
                if AggFunc::is_aggregate_name(name) {
                    return Err(PermError::Analysis(format!(
                        "aggregate function {name}() is not allowed here"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| PermError::Analysis(format!("unknown function '{name}'")))?;
                Ok(ScalarExpr::ScalarFn {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, schema))
                        .collect::<Result<_>>()?,
                })
            }
            AstExpr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let operand = self.bind_expr(expr, schema)?;
                let plan = self.bind_subquery(query, schema)?;
                if plan.arity() != 1 {
                    return Err(PermError::Analysis(format!(
                        "IN subquery must return one column, returns {}",
                        plan.arity()
                    )));
                }
                let correlated = plan.is_correlated();
                Ok(ScalarExpr::Subquery(SubqueryExpr {
                    kind: SubqueryKind::In,
                    plan: Box::new(plan),
                    negated: *negated,
                    operand: Some(Box::new(operand)),
                    correlated,
                }))
            }
            AstExpr::Exists { query, negated } => {
                let plan = self.bind_subquery(query, schema)?;
                let correlated = plan.is_correlated();
                Ok(ScalarExpr::Subquery(SubqueryExpr {
                    kind: SubqueryKind::Exists,
                    plan: Box::new(plan),
                    negated: *negated,
                    operand: None,
                    correlated,
                }))
            }
            AstExpr::ScalarSubquery(query) => {
                let plan = self.bind_subquery(query, schema)?;
                if plan.arity() != 1 {
                    return Err(PermError::Analysis(format!(
                        "scalar subquery must return one column, returns {}",
                        plan.arity()
                    )));
                }
                let correlated = plan.is_correlated();
                Ok(ScalarExpr::Subquery(SubqueryExpr {
                    kind: SubqueryKind::Scalar,
                    plan: Box::new(plan),
                    negated: false,
                    operand: None,
                    correlated,
                }))
            }
        }
    }

    fn bind_subquery(&mut self, q: &Query, enclosing: &Schema) -> Result<LogicalPlan> {
        self.outer.push(enclosing.clone());
        let plan = self.bind_query(q);
        self.outer.pop();
        plan
    }
}

/// State accumulated while binding one aggregate select.
struct AggBinding {
    input_schema: Schema,
    group_ast: Vec<AstExpr>,
    group_exprs: Vec<ScalarExpr>,
    group_cols: Vec<Column>,
    /// `(original AST, bound call, output column)` per aggregate.
    aggs: Vec<(AstExpr, AggCall, Column)>,
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

fn bind_binary(op: BinaryOp, l: ScalarExpr, r: ScalarExpr) -> Result<ScalarExpr> {
    let op = match op {
        BinaryOp::Eq => BinOp::Eq,
        BinaryOp::NotEq => BinOp::NotEq,
        BinaryOp::Lt => BinOp::Lt,
        BinaryOp::LtEq => BinOp::LtEq,
        BinaryOp::Gt => BinOp::Gt,
        BinaryOp::GtEq => BinOp::GtEq,
        BinaryOp::And => BinOp::And,
        BinaryOp::Or => BinOp::Or,
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => BinOp::Div,
        BinaryOp::Mod => BinOp::Mod,
        BinaryOp::Concat => BinOp::Concat,
    };
    Ok(ScalarExpr::binary(op, l, r))
}

fn bind_unary(op: UnaryOp, inner: ScalarExpr) -> ScalarExpr {
    match op {
        UnaryOp::Not => ScalarExpr::Unary {
            op: UnOp::Not,
            expr: Box::new(inner),
        },
        UnaryOp::Neg => ScalarExpr::Unary {
            op: UnOp::Neg,
            expr: Box::new(inner),
        },
        UnaryOp::Plus => inner,
    }
}

/// `a BETWEEN lo AND hi` desugars to `a >= lo AND a <= hi`.
fn desugar_between(e: ScalarExpr, lo: ScalarExpr, hi: ScalarExpr, negated: bool) -> ScalarExpr {
    let within = ScalarExpr::binary(
        BinOp::And,
        ScalarExpr::binary(BinOp::GtEq, e.clone(), lo),
        ScalarExpr::binary(BinOp::LtEq, e, hi),
    );
    if negated {
        ScalarExpr::Unary {
            op: UnOp::Not,
            expr: Box::new(within),
        }
    } else {
        within
    }
}

/// Rename a prefix of `plan`'s columns per a `(c1, c2, …)` alias list.
fn apply_column_aliases(
    plan: LogicalPlan,
    binding: &str,
    aliases: Option<&[String]>,
) -> Result<LogicalPlan> {
    let Some(aliases) = aliases else {
        return Ok(plan);
    };
    if aliases.len() > plan.arity() {
        return Err(PermError::Analysis(format!(
            "FROM item '{binding}' has {} columns but {} column aliases",
            plan.arity(),
            aliases.len()
        )));
    }
    let mut columns: Vec<Column> = plan.schema().columns().to_vec();
    for (c, a) in columns.iter_mut().zip(aliases) {
        c.name = a.clone();
    }
    let exprs = (0..plan.arity()).map(ScalarExpr::Column).collect();
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(columns),
    })
}

/// Wrap `plan` so its columns are visible under the alias `binding`
/// (derived tables, unfolded views).
fn rename(plan: LogicalPlan, binding: &str) -> LogicalPlan {
    let schema = plan.schema().requalify(binding);
    let exprs = (0..plan.arity()).map(ScalarExpr::Column).collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema,
    }
}

/// Cast each column of `plan` to the target types where they differ.
fn cast_to(plan: LogicalPlan, targets: &[DataType]) -> LogicalPlan {
    let schema = plan.schema().clone();
    let needs_cast = (0..schema.len()).any(|i| {
        let t = schema.column(i).ty;
        t != targets[i] && t != DataType::Unknown
    });
    // Unknown (bare NULL) columns evaluate fine without casts.
    if !needs_cast && (0..schema.len()).all(|i| schema.column(i).ty == targets[i]) {
        return plan;
    }
    let exprs: Vec<ScalarExpr> = (0..schema.len())
        .map(|i| {
            if schema.column(i).ty == targets[i] {
                ScalarExpr::Column(i)
            } else {
                ScalarExpr::Cast {
                    expr: Box::new(ScalarExpr::Column(i)),
                    ty: targets[i],
                }
            }
        })
        .collect();
    let columns: Vec<Column> = schema
        .iter()
        .zip(targets)
        .map(|(c, &t)| {
            let mut c = c.clone();
            c.ty = t;
            c
        })
        .collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(columns),
    }
}

/// The output column of a select item: alias, else a derived name.
fn output_column(
    alias: Option<&str>,
    ast: &AstExpr,
    bound: &ScalarExpr,
    schema: &Schema,
    ty: DataType,
) -> Column {
    if let Some(a) = alias {
        return Column::new(a, ty);
    }
    match ast {
        AstExpr::Column { name, .. } => Column::new(name.clone(), ty),
        AstExpr::Function { name, .. } => Column::new(name.to_ascii_lowercase(), ty),
        AstExpr::Cast { expr, .. } => {
            if let AstExpr::Column { name, .. } = expr.as_ref() {
                Column::new(name.clone(), ty)
            } else {
                Column::new("?column?", ty)
            }
        }
        _ => {
            if let ScalarExpr::Column(i) = bound {
                let c = schema.column(*i);
                Column::new(c.name.clone(), ty)
            } else {
                Column::new("?column?", ty)
            }
        }
    }
}

/// The provenance clause on the leftmost select core of a set-operation
/// tree, if any.
fn leftmost_provenance(body: &QueryBody) -> Option<&perm_sql::ProvenanceClause> {
    match body {
        QueryBody::Select(s) => s.provenance.as_ref(),
        QueryBody::SetOp { left, .. } => leftmost_provenance(left),
    }
}

/// A copy of `body` with the leftmost select core's provenance clause
/// removed.
fn strip_leftmost_provenance(body: &QueryBody) -> QueryBody {
    match body {
        QueryBody::Select(s) => {
            let mut s = (**s).clone();
            s.provenance = None;
            QueryBody::Select(Box::new(s))
        }
        QueryBody::SetOp {
            op,
            all,
            left,
            right,
        } => QueryBody::SetOp {
            op: *op,
            all: *all,
            left: Box::new(strip_leftmost_provenance(left)),
            right: right.clone(),
        },
    }
}

/// A printable name for a synthesized column.
fn display_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Function { name, .. } => name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}

fn select_item_has_aggregate(item: &SelectItem) -> bool {
    match item {
        SelectItem::Expr { expr, .. } => expr_has_aggregate(expr),
        _ => false,
    }
}

/// AST walk: does this expression contain an aggregate call (not inside a
/// subquery)?
fn expr_has_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Function { name, args, .. } => {
            AggFunc::is_aggregate_name(name) || args.iter().any(expr_has_aggregate)
        }
        AstExpr::Literal(_) | AstExpr::Column { .. } => false,
        AstExpr::Binary { left, right, .. } => {
            expr_has_aggregate(left) || expr_has_aggregate(right)
        }
        AstExpr::Unary { expr, .. } | AstExpr::IsNull { expr, .. } => expr_has_aggregate(expr),
        AstExpr::IsDistinctFrom { left, right, .. } => {
            expr_has_aggregate(left) || expr_has_aggregate(right)
        }
        AstExpr::Like { expr, pattern, .. } => {
            expr_has_aggregate(expr) || expr_has_aggregate(pattern)
        }
        AstExpr::Between {
            expr, low, high, ..
        } => expr_has_aggregate(expr) || expr_has_aggregate(low) || expr_has_aggregate(high),
        AstExpr::InList { expr, list, .. } => {
            expr_has_aggregate(expr) || list.iter().any(expr_has_aggregate)
        }
        AstExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().is_some_and(expr_has_aggregate)
                || branches
                    .iter()
                    .any(|(c, r)| expr_has_aggregate(c) || expr_has_aggregate(r))
                || else_branch.as_deref().is_some_and(expr_has_aggregate)
        }
        AstExpr::Cast { expr, .. } => expr_has_aggregate(expr),
        // Aggregates inside a subquery belong to the subquery.
        AstExpr::InSubquery { expr, .. } => expr_has_aggregate(expr),
        AstExpr::Exists { .. } | AstExpr::ScalarSubquery(_) => false,
    }
}

/// Bind a DDL/DML statement's embedded query parts. Returned by
/// [`bind_statement`] so callers can execute each kind.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundStatement {
    Query(LogicalPlan),
    CreateTable {
        name: String,
        schema: Schema,
    },
    CreateTableAs {
        name: String,
        plan: LogicalPlan,
        /// Provenance attribute positions when the query was a
        /// `SELECT PROVENANCE` (eager provenance metadata).
        provenance_attrs: Option<Vec<usize>>,
    },
    CreateView {
        name: String,
        definition: Query,
    },
    Insert {
        table: String,
        /// One bound row of expressions per VALUES tuple, already reordered
        /// to table-column order (missing columns filled with NULL).
        rows: Vec<Vec<ScalarExpr>>,
    },
    Drop {
        kind: ObjectKind,
        name: String,
        if_exists: bool,
    },
    Delete {
        table: String,
        /// Bound over the table's schema.
        predicate: Option<ScalarExpr>,
    },
    Update {
        table: String,
        /// `(column position, bound value expression)` pairs, value
        /// expressions bound over the table's schema.
        assignments: Vec<(usize, ScalarExpr)>,
        predicate: Option<ScalarExpr>,
    },
    Explain {
        plan: LogicalPlan,
        verbose: bool,
        verify: bool,
    },
}

/// Bind any statement.
pub fn bind_statement(
    stmt: &Statement,
    catalog: &dyn CatalogProvider,
    transform: Option<&dyn ProvenanceTransform>,
) -> Result<BoundStatement> {
    let mut binder = match transform {
        Some(t) => Binder::with_provenance(catalog, t),
        None => Binder::new(catalog),
    };
    match stmt {
        Statement::Query(q) => Ok(BoundStatement::Query(binder.bind_query(q)?)),
        Statement::Explain {
            query,
            verbose,
            verify,
        } => Ok(BoundStatement::Explain {
            plan: binder.bind_query(query)?,
            verbose: *verbose,
            verify: *verify,
        }),
        Statement::Delete { table, predicate } => {
            let meta = catalog
                .base_table(table)
                .ok_or_else(|| PermError::Analysis(format!("table '{table}' does not exist")))?;
            let predicate = predicate
                .as_ref()
                .map(|p| binder.bind_expr(p, &meta.schema))
                .transpose()?;
            Ok(BoundStatement::Delete {
                table: table.clone(),
                predicate,
            })
        }
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            let meta = catalog
                .base_table(table)
                .ok_or_else(|| PermError::Analysis(format!("table '{table}' does not exist")))?;
            let mut bound = Vec::with_capacity(assignments.len());
            for (col, value) in assignments {
                let pos = meta.schema.resolve(None, col)?;
                bound.push((pos, binder.bind_expr(value, &meta.schema)?));
            }
            let predicate = predicate
                .as_ref()
                .map(|p| binder.bind_expr(p, &meta.schema))
                .transpose()?;
            Ok(BoundStatement::Update {
                table: table.clone(),
                assignments: bound,
                predicate,
            })
        }
        Statement::CreateTable { name, columns } => {
            if columns.is_empty() {
                return Err(PermError::Analysis(
                    "a table needs at least one column".into(),
                ));
            }
            let mut cols = Vec::with_capacity(columns.len());
            for c in columns {
                let mut col = Column::new(c.name.clone(), c.ty);
                col.nullable = !c.not_null;
                cols.push(col);
            }
            Ok(BoundStatement::CreateTable {
                name: name.clone(),
                schema: Schema::new(cols),
            })
        }
        Statement::CreateTableAs { name, query } => {
            let plan = binder.bind_query(query)?;
            let provenance_attrs = if query.provenance_clause().is_some() {
                binder.last_provenance_attrs().map(|a| a.to_vec())
            } else {
                None
            };
            Ok(BoundStatement::CreateTableAs {
                name: name.clone(),
                plan,
                provenance_attrs,
            })
        }
        Statement::CreateView { name, query } => {
            // Validate the definition eagerly (so errors surface at CREATE
            // VIEW time), then store the raw AST.
            binder.bind_query(query)?;
            Ok(BoundStatement::CreateView {
                name: name.clone(),
                definition: query.clone(),
            })
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let meta = catalog
                .base_table(table)
                .ok_or_else(|| PermError::Analysis(format!("relation '{table}' does not exist")))?;
            let schema = meta.schema;
            // Map the INSERT column list to table positions.
            let targets: Vec<usize> = match columns {
                None => (0..schema.len()).collect(),
                Some(names) => names
                    .iter()
                    .map(|n| schema.resolve(None, n))
                    .collect::<Result<_>>()?,
            };
            let empty = Schema::empty();
            let mut bound_rows = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != targets.len() {
                    return Err(PermError::Analysis(format!(
                        "INSERT expects {} values per row, got {}",
                        targets.len(),
                        row.len()
                    )));
                }
                let mut full: Vec<ScalarExpr> =
                    vec![ScalarExpr::Literal(Value::Null); schema.len()];
                for (e, &pos) in row.iter().zip(&targets) {
                    full[pos] = binder.bind_expr(e, &empty)?;
                }
                bound_rows.push(full);
            }
            Ok(BoundStatement::Insert {
                table: table.clone(),
                rows: bound_rows,
            })
        }
        Statement::Drop {
            kind,
            name,
            if_exists,
        } => Ok(BoundStatement::Drop {
            kind: *kind,
            name: name.clone(),
            if_exists: *if_exists,
        }),
    }
}

#[cfg(test)]
mod tests;
