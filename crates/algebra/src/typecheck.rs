//! Static typing of bound expressions.

use perm_types::{DataType, PermError, Result, Schema};

use crate::expr::{AggCall, AggFunc, BinOp, ScalarExpr, ScalarFunc, SubqueryKind, UnOp};

/// Compute the static type of a bound expression.
///
/// `schema` is the input relation's schema; `outer` is the stack of
/// enclosing schemas for correlated references (`outer[0]` is the
/// immediately enclosing scope, i.e. `levels_up == 1`).
pub fn expr_type(expr: &ScalarExpr, schema: &Schema, outer: &[&Schema]) -> Result<DataType> {
    match expr {
        ScalarExpr::Literal(v) => Ok(v.data_type()),
        ScalarExpr::Column(i) => {
            if *i >= schema.len() {
                return Err(PermError::Analysis(format!(
                    "column position {i} out of range ({} columns)",
                    schema.len()
                )));
            }
            Ok(schema.column(*i).ty)
        }
        ScalarExpr::OuterColumn { levels_up, index } => {
            let s = outer.get(levels_up - 1).ok_or_else(|| {
                PermError::Analysis(format!(
                    "outer reference {levels_up} levels up, but only {} outer scopes",
                    outer.len()
                ))
            })?;
            if *index >= s.len() {
                return Err(PermError::Analysis(format!(
                    "outer column position {index} out of range"
                )));
            }
            Ok(s.column(*index).ty)
        }
        ScalarExpr::Binary { op, left, right } => {
            let lt = expr_type(left, schema, outer)?;
            let rt = expr_type(right, schema, outer)?;
            binary_type(*op, lt, rt)
        }
        ScalarExpr::Unary { op, expr } => {
            let t = expr_type(expr, schema, outer)?;
            match op {
                UnOp::Not => expect_bool(t, "NOT"),
                UnOp::Neg => {
                    if t.is_numeric() || t == DataType::Unknown {
                        Ok(t)
                    } else {
                        Err(PermError::Analysis(format!("cannot negate {t}")))
                    }
                }
            }
        }
        ScalarExpr::IsNull { expr, .. } => {
            expr_type(expr, schema, outer)?;
            Ok(DataType::Bool)
        }
        ScalarExpr::Like { expr, pattern, .. } => {
            let et = expr_type(expr, schema, outer)?;
            let pt = expr_type(pattern, schema, outer)?;
            for t in [et, pt] {
                if t != DataType::Text && t != DataType::Unknown {
                    return Err(PermError::Analysis(format!("LIKE requires text, got {t}")));
                }
            }
            Ok(DataType::Bool)
        }
        ScalarExpr::InList { expr, list, .. } => {
            let mut t = expr_type(expr, schema, outer)?;
            for e in list {
                t = t.unify(expr_type(e, schema, outer)?)?;
            }
            Ok(DataType::Bool)
        }
        ScalarExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            let op_ty = operand
                .as_ref()
                .map(|o| expr_type(o, schema, outer))
                .transpose()?;
            let mut result_ty = DataType::Unknown;
            for (cond, res) in branches {
                let ct = expr_type(cond, schema, outer)?;
                match op_ty {
                    // `CASE x WHEN v …` compares x with v.
                    Some(ot) => {
                        ot.unify(ct)?;
                    }
                    None => {
                        expect_bool(ct, "CASE WHEN")?;
                    }
                }
                result_ty = result_ty.unify(expr_type(res, schema, outer)?)?;
            }
            if let Some(e) = else_branch {
                result_ty = result_ty.unify(expr_type(e, schema, outer)?)?;
            }
            Ok(result_ty)
        }
        ScalarExpr::Cast { expr, ty } => {
            expr_type(expr, schema, outer)?;
            Ok(*ty)
        }
        ScalarExpr::ScalarFn { func, args } => {
            let (min, max) = func.arity();
            if args.len() < min || args.len() > max {
                return Err(PermError::Analysis(format!(
                    "{} expects {} arguments, got {}",
                    func.name(),
                    if min == max {
                        min.to_string()
                    } else if max == usize::MAX {
                        format!("at least {min}")
                    } else {
                        format!("{min}..{max}")
                    },
                    args.len()
                )));
            }
            let arg_tys: Vec<DataType> = args
                .iter()
                .map(|a| expr_type(a, schema, outer))
                .collect::<Result<_>>()?;
            scalar_fn_type(*func, &arg_tys)
        }
        ScalarExpr::Subquery(sq) => match sq.kind {
            SubqueryKind::Scalar => {
                let sub_schema = sq.plan.schema();
                if sub_schema.len() != 1 {
                    return Err(PermError::Analysis(format!(
                        "scalar subquery must return one column, returns {}",
                        sub_schema.len()
                    )));
                }
                Ok(sub_schema.column(0).ty)
            }
            SubqueryKind::Exists | SubqueryKind::In => Ok(DataType::Bool),
        },
    }
}

fn expect_bool(t: DataType, ctx: &str) -> Result<DataType> {
    if t == DataType::Bool || t == DataType::Unknown {
        Ok(DataType::Bool)
    } else {
        Err(PermError::Analysis(format!("{ctx} requires bool, got {t}")))
    }
}

fn binary_type(op: BinOp, lt: DataType, rt: DataType) -> Result<DataType> {
    if op.is_logical() {
        expect_bool(lt, op.sql())?;
        expect_bool(rt, op.sql())?;
        return Ok(DataType::Bool);
    }
    if op.is_comparison() {
        lt.unify(rt)
            .map_err(|_| PermError::Analysis(format!("cannot compare {lt} {} {rt}", op.sql())))?;
        return Ok(DataType::Bool);
    }
    match op {
        BinOp::Concat => Ok(DataType::Text),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let t = lt.unify(rt).map_err(|_| {
                PermError::Analysis(format!("cannot apply {} to {lt} and {rt}", op.sql()))
            })?;
            if t.is_numeric() || t == DataType::Unknown {
                Ok(t)
            } else {
                Err(PermError::Analysis(format!(
                    "arithmetic requires numbers, got {t}"
                )))
            }
        }
        _ => unreachable!("comparisons and logicals handled above"),
    }
}

fn scalar_fn_type(func: ScalarFunc, args: &[DataType]) -> Result<DataType> {
    use ScalarFunc::*;
    let expect_text = |t: DataType| -> Result<()> {
        if t == DataType::Text || t == DataType::Unknown {
            Ok(())
        } else {
            Err(PermError::Analysis(format!(
                "{} requires text, got {t}",
                func.name()
            )))
        }
    };
    Ok(match func {
        Upper | Lower | Trim => {
            expect_text(args[0])?;
            DataType::Text
        }
        Replace => {
            for &a in args {
                expect_text(a)?;
            }
            DataType::Text
        }
        Substr => {
            expect_text(args[0])?;
            for &a in &args[1..] {
                if !a.is_numeric() && a != DataType::Unknown {
                    return Err(PermError::Analysis(format!(
                        "substr() positions must be numbers, got {a}"
                    )));
                }
            }
            DataType::Text
        }
        Length => {
            expect_text(args[0])?;
            DataType::Int
        }
        Abs | Round | Floor | Ceil => {
            let t = args[0];
            if !t.is_numeric() && t != DataType::Unknown {
                return Err(PermError::Analysis(format!(
                    "{} requires a number, got {t}",
                    func.name()
                )));
            }
            if func == Round && args.len() == 2 {
                DataType::Float
            } else {
                t
            }
        }
        Coalesce | Greatest | Least => {
            let mut t = DataType::Unknown;
            for &a in args {
                t = t.unify(a)?;
            }
            t
        }
        NullIf => args[0].unify(args[1])?,
    })
}

/// Result type of an aggregate call given its argument type.
pub fn agg_type(call: &AggCall, schema: &Schema, outer: &[&Schema]) -> Result<DataType> {
    let arg_ty = call
        .arg
        .as_ref()
        .map(|a| expr_type(a, schema, outer))
        .transpose()?;
    Ok(match call.func {
        AggFunc::Count => DataType::Int,
        AggFunc::Sum => match arg_ty.expect("sum has an argument") {
            DataType::Int => DataType::Int,
            DataType::Float | DataType::Unknown => DataType::Float,
            t => {
                return Err(PermError::Analysis(format!(
                    "sum() requires numbers, got {t}"
                )));
            }
        },
        AggFunc::Avg => {
            let t = arg_ty.expect("avg has an argument");
            if !t.is_numeric() && t != DataType::Unknown {
                return Err(PermError::Analysis(format!(
                    "avg() requires numbers, got {t}"
                )));
            }
            DataType::Float
        }
        AggFunc::Min | AggFunc::Max | AggFunc::AnyValue => {
            arg_ty.expect("min/max/any_value has an argument")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("t", DataType::Text),
            Column::new("b", DataType::Bool),
            Column::new("f", DataType::Float),
        ])
    }

    fn ty(e: &ScalarExpr) -> Result<DataType> {
        expr_type(e, &schema(), &[])
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(ty(&ScalarExpr::Column(0)).unwrap(), DataType::Int);
        assert_eq!(ty(&ScalarExpr::Column(1)).unwrap(), DataType::Text);
        assert!(ty(&ScalarExpr::Column(9)).is_err());
        assert_eq!(
            ty(&ScalarExpr::Literal(Value::Null)).unwrap(),
            DataType::Unknown
        );
    }

    #[test]
    fn arithmetic_widens() {
        let e = ScalarExpr::binary(BinOp::Add, ScalarExpr::Column(0), ScalarExpr::Column(3));
        assert_eq!(ty(&e).unwrap(), DataType::Float);
        let bad = ScalarExpr::binary(BinOp::Add, ScalarExpr::Column(0), ScalarExpr::Column(1));
        assert!(ty(&bad).is_err());
    }

    #[test]
    fn comparisons_are_bool_and_need_compatible_sides() {
        let e = ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(3));
        assert_eq!(ty(&e).unwrap(), DataType::Bool);
        let bad = ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1));
        assert!(ty(&bad).is_err());
    }

    #[test]
    fn logical_ops_require_bool() {
        let ok = ScalarExpr::binary(BinOp::And, ScalarExpr::Column(2), ScalarExpr::Column(2));
        assert_eq!(ty(&ok).unwrap(), DataType::Bool);
        let bad = ScalarExpr::binary(BinOp::And, ScalarExpr::Column(0), ScalarExpr::Column(2));
        assert!(ty(&bad).is_err());
    }

    #[test]
    fn case_branches_unify() {
        let e = ScalarExpr::Case {
            operand: None,
            branches: vec![(ScalarExpr::Column(2), ScalarExpr::Column(0))],
            else_branch: Some(Box::new(ScalarExpr::Column(3))),
        };
        assert_eq!(ty(&e).unwrap(), DataType::Float);
        let bad = ScalarExpr::Case {
            operand: None,
            branches: vec![(ScalarExpr::Column(2), ScalarExpr::Column(0))],
            else_branch: Some(Box::new(ScalarExpr::Column(1))),
        };
        assert!(ty(&bad).is_err());
    }

    #[test]
    fn scalar_function_arity_is_checked() {
        let bad = ScalarExpr::ScalarFn {
            func: ScalarFunc::Upper,
            args: vec![],
        };
        assert!(ty(&bad).is_err());
        let ok = ScalarExpr::ScalarFn {
            func: ScalarFunc::Coalesce,
            args: vec![ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(0))],
        };
        assert_eq!(ty(&ok).unwrap(), DataType::Int);
    }

    #[test]
    fn outer_references_use_the_scope_stack() {
        let outer_schema = Schema::new(vec![Column::new("o", DataType::Text)]);
        let e = ScalarExpr::OuterColumn {
            levels_up: 1,
            index: 0,
        };
        assert_eq!(
            expr_type(&e, &schema(), &[&outer_schema]).unwrap(),
            DataType::Text
        );
        assert!(expr_type(&e, &schema(), &[]).is_err());
    }

    #[test]
    fn aggregate_types() {
        let count = AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert_eq!(agg_type(&count, &schema(), &[]).unwrap(), DataType::Int);
        let sum_int = AggCall {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(0)),
            distinct: false,
        };
        assert_eq!(agg_type(&sum_int, &schema(), &[]).unwrap(), DataType::Int);
        let avg = AggCall {
            func: AggFunc::Avg,
            arg: Some(ScalarExpr::Column(0)),
            distinct: false,
        };
        assert_eq!(agg_type(&avg, &schema(), &[]).unwrap(), DataType::Float);
        let bad = AggCall {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        };
        assert!(agg_type(&bad, &schema(), &[]).is_err());
    }
}
