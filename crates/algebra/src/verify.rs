//! Static verification of logical plans.
//!
//! Every plan transformation in the pipeline — binding, the provenance
//! rewrite, and each optimizer pass — is supposed to hand the next stage a
//! *well-formed* plan: operator schemas agree with their children, every
//! expression typechecks against its input, provenance rewrites append
//! provenance attributes without disturbing the original columns. Until
//! now those contracts were only enforced dynamically, by executing
//! queries. This module checks them *statically*, on the plan tree itself,
//! and names both the violated invariant and the pass that produced the
//! broken plan:
//!
//! ```text
//! plan error: plan verifier [column-pruning]: expr-type violated at
//! Project > Filter: predicate #7: column position 7 out of range (3 columns)
//! ```
//!
//! The verifier is cheap (one tree walk, no data access) and runs after
//! every rewrite/optimizer phase in debug and test builds; see
//! `perm_exec::optimize_with` and `SessionOptions::verify_plans`.

use perm_types::{DataType, PermError, Result, Schema, Value};

use crate::expr::{AggCall, BinOp, ScalarExpr, UnOp};
use crate::plan::{JoinType, LogicalPlan};
use crate::typecheck;

/// Build the uniform verifier error: category `plan`, message naming the
/// responsible pass, the violated invariant and the node path.
fn violation(pass: &str, invariant: &str, path: &str, detail: impl std::fmt::Display) -> PermError {
    PermError::Plan(format!(
        "plan verifier [{pass}]: {invariant} violated at {path}: {detail}"
    ))
}

/// Lenient type compatibility: the engine coerces freely between the
/// numeric types and `Unknown` (the type of untyped NULL) unifies with
/// anything, so the verifier only rejects genuinely incompatible pairs.
fn compatible(a: DataType, b: DataType) -> bool {
    a == b
        || matches!(a, DataType::Unknown)
        || matches!(b, DataType::Unknown)
        || matches!(
            (a, b),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int)
        )
}

fn boolish(t: DataType) -> bool {
    matches!(t, DataType::Bool | DataType::Unknown)
}

/// Verify that `plan` is internally consistent: every operator's schema
/// matches its children, every expression (including inside sublink
/// subplans) typechecks against its input with all slot references in
/// bounds. `pass` names the transformation that produced the plan and is
/// included in any error.
pub fn verify_logical(plan: &LogicalPlan, pass: &str) -> Result<()> {
    verify_node(plan, pass, "", &[])
}

/// One checking context: `outer[0]` is the schema of the immediately
/// enclosing query (for `OuterColumn { levels_up: 1, .. }`), matching the
/// convention of [`typecheck::expr_type`].
fn verify_node(plan: &LogicalPlan, pass: &str, path: &str, outer: &[Schema]) -> Result<()> {
    let name = plan.node_name();
    let path = if path.is_empty() {
        name
    } else {
        format!("{path} > {name}")
    };

    match plan {
        LogicalPlan::Scan {
            schema,
            provenance_cols,
            ..
        } => {
            for &i in provenance_cols {
                if i >= schema.len() {
                    return Err(violation(
                        pass,
                        "slot-bounds",
                        &path,
                        format!(
                            "provenance column {i} out of range ({} columns)",
                            schema.len()
                        ),
                    ));
                }
            }
        }
        LogicalPlan::Values { rows, schema } => {
            let empty = Schema::empty();
            for (r, row) in rows.iter().enumerate() {
                if row.len() != schema.len() {
                    return Err(violation(
                        pass,
                        "schema-arity",
                        &path,
                        format!(
                            "row {r} has {} expressions but the schema declares {} columns",
                            row.len(),
                            schema.len()
                        ),
                    ));
                }
                for (c, e) in row.iter().enumerate() {
                    check_expr(
                        e,
                        &empty,
                        outer,
                        pass,
                        &path,
                        &format!("row {r} column {c}"),
                    )?;
                }
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            if exprs.len() != schema.len() {
                return Err(violation(
                    pass,
                    "schema-arity",
                    &path,
                    format!(
                        "{} projection expressions but the schema declares {} columns",
                        exprs.len(),
                        schema.len()
                    ),
                ));
            }
            for (i, e) in exprs.iter().enumerate() {
                let ty = check_expr(e, input.schema(), outer, pass, &path, &format!("expr {i}"))?;
                let declared = schema.column(i).ty;
                if !compatible(ty, declared) {
                    return Err(violation(
                        pass,
                        "expr-type",
                        &path,
                        format!(
                            "expr {i} ({e}) has type {ty} but output column '{}' declares {declared}",
                            schema.column(i).name
                        ),
                    ));
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let ty = check_expr(predicate, input.schema(), outer, pass, &path, "predicate")?;
            if !boolish(ty) {
                return Err(violation(
                    pass,
                    "expr-type",
                    &path,
                    format!("predicate ({predicate}) has non-boolean type {ty}"),
                ));
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            schema,
        } => {
            if condition.is_none() && !matches!(kind, JoinType::Cross) {
                return Err(violation(
                    pass,
                    "join-condition",
                    &path,
                    format!("{} join has no condition", kind.name()),
                ));
            }
            // The condition always sees both sides, even for Semi/Anti
            // joins whose *output* is the left side only.
            let env = left.schema().join(right.schema());
            if let Some(c) = condition {
                let ty = check_expr(c, &env, outer, pass, &path, "condition")?;
                if !boolish(ty) {
                    return Err(violation(
                        pass,
                        "expr-type",
                        &path,
                        format!("condition ({c}) has non-boolean type {ty}"),
                    ));
                }
            }
            // The node's recorded schema must match what the join kind
            // derives from the children. Names and types only: the
            // LEFT→INNER demotion legitimately strips the nullable marks
            // the LEFT join added.
            let expected = match kind {
                JoinType::Semi | JoinType::Anti => left.schema().clone(),
                _ => env,
            };
            check_same_shape(schema, &expected, pass, "schema-consistency", &path)?;
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            if group_by.len() + aggs.len() != schema.len() {
                return Err(violation(
                    pass,
                    "schema-arity",
                    &path,
                    format!(
                        "{} group keys + {} aggregates but the schema declares {} columns",
                        group_by.len(),
                        aggs.len(),
                        schema.len()
                    ),
                ));
            }
            for (i, e) in group_by.iter().enumerate() {
                let ty = check_expr(
                    e,
                    input.schema(),
                    outer,
                    pass,
                    &path,
                    &format!("group key {i}"),
                )?;
                if !compatible(ty, schema.column(i).ty) {
                    return Err(violation(
                        pass,
                        "expr-type",
                        &path,
                        format!(
                            "group key {i} ({e}) has type {ty} but output column declares {}",
                            schema.column(i).ty
                        ),
                    ));
                }
            }
            for (j, call) in aggs.iter().enumerate() {
                check_agg(call, input.schema(), outer, pass, &path, j)?;
            }
        }
        LogicalPlan::SetOp {
            left,
            right,
            schema,
            ..
        } => {
            if left.arity() != schema.len() || right.arity() != schema.len() {
                return Err(violation(
                    pass,
                    "setop-arity",
                    &path,
                    format!(
                        "sides have {} and {} columns but the schema declares {}",
                        left.arity(),
                        right.arity(),
                        schema.len()
                    ),
                ));
            }
        }
        LogicalPlan::Sort { input, keys } => {
            for (i, k) in keys.iter().enumerate() {
                check_expr(
                    &k.expr,
                    input.schema(),
                    outer,
                    pass,
                    &path,
                    &format!("sort key {i}"),
                )?;
            }
        }
        // Pass-through operators: nothing to check beyond their children.
        LogicalPlan::Distinct { .. } | LogicalPlan::Limit { .. } | LogicalPlan::Boundary { .. } => {
        }
    }

    for child in plan.children() {
        verify_node(child, pass, &path, outer)?;
    }
    Ok(())
}

/// Typecheck one expression against its input schema, then recurse into
/// any sublink subplans it contains (with this scope's schema pushed onto
/// the outer stack, so correlated `OuterColumn` references resolve).
fn check_expr(
    e: &ScalarExpr,
    env: &Schema,
    outer: &[Schema],
    pass: &str,
    path: &str,
    what: &str,
) -> Result<DataType> {
    let refs: Vec<&Schema> = outer.iter().collect();
    let ty = typecheck::expr_type(e, env, &refs).map_err(|err| {
        // An out-of-range column position is its own invariant (a pass
        // dropped a column something still references); everything else
        // is a typing violation.
        let invariant = if err.message().contains("out of range") {
            "slot-bounds"
        } else {
            "expr-type"
        };
        violation(
            pass,
            invariant,
            path,
            format!("{what} ({e}): {}", err.message()),
        )
    })?;
    let mut nested = Ok(());
    e.visit(&mut |sub| {
        if let ScalarExpr::Subquery(sq) = sub {
            if nested.is_ok() {
                let mut inner: Vec<Schema> = Vec::with_capacity(outer.len() + 1);
                inner.push(env.clone());
                inner.extend(outer.iter().cloned());
                nested = verify_node(&sq.plan, pass, path, &inner);
            }
        }
    });
    nested?;
    Ok(ty)
}

fn check_agg(
    call: &AggCall,
    env: &Schema,
    outer: &[Schema],
    pass: &str,
    path: &str,
    index: usize,
) -> Result<()> {
    let refs: Vec<&Schema> = outer.iter().collect();
    typecheck::agg_type(call, env, &refs).map_err(|err| {
        violation(
            pass,
            "expr-type",
            path,
            format!("aggregate {index} ({call}): {}", err.message()),
        )
    })?;
    if let Some(arg) = &call.arg {
        // `agg_type` typechecked the argument; still recurse for sublinks.
        check_expr(
            arg,
            env,
            outer,
            pass,
            path,
            &format!("aggregate {index} argument"),
        )?;
    }
    Ok(())
}

/// Compare two schemas by arity, column names and (compatible) types,
/// ignoring nullability and qualifiers.
fn check_same_shape(
    got: &Schema,
    expected: &Schema,
    pass: &str,
    invariant: &str,
    path: &str,
) -> Result<()> {
    if got.len() != expected.len() {
        return Err(violation(
            pass,
            invariant,
            path,
            format!(
                "schema has {} columns, expected {}",
                got.len(),
                expected.len()
            ),
        ));
    }
    for i in 0..got.len() {
        let (g, e) = (got.column(i), expected.column(i));
        if g.name != e.name {
            return Err(violation(
                pass,
                invariant,
                path,
                format!("column {i} is named '{}', expected '{}'", g.name, e.name),
            ));
        }
        if !compatible(g.ty, e.ty) {
            return Err(violation(
                pass,
                invariant,
                path,
                format!(
                    "column {i} ('{}') has type {}, expected {}",
                    g.name, g.ty, e.ty
                ),
            ));
        }
    }
    Ok(())
}

/// Verify that an optimizer pass preserved the plan's output schema:
/// same arity, names and types as `before`. Nullability is deliberately
/// not compared — the LEFT→INNER join demotion legitimately reverts the
/// nullable marks the LEFT join added to its right side.
pub fn verify_schema_preserved(before: &Schema, after: &LogicalPlan, pass: &str) -> Result<()> {
    check_same_shape(after.schema(), before, pass, "schema-preservation", "root")
}

/// Verify the provenance-rewrite contract: the rewritten plan's schema is
/// the original query's schema with the provenance attributes appended as
/// a trailing block (`rewritten = original ++ provenance`), the original
/// columns keep their names and types, and every provenance attribute is
/// recognizably one — either Perm-named (`prov_<schema>_<relation>_<attr>`)
/// or an external provenance column carried through with its relation
/// qualifier (paper §2.2: external provenance propagates untouched).
pub fn verify_provenance_schema(
    original: &Schema,
    rewritten: &LogicalPlan,
    prov_attrs: &[usize],
    pass: &str,
) -> Result<()> {
    let got = rewritten.schema();
    let n = original.len();
    if got.len() != n + prov_attrs.len() {
        return Err(violation(
            pass,
            "provenance-schema",
            "root",
            format!(
                "rewritten schema has {} columns, expected {n} original + {} provenance",
                got.len(),
                prov_attrs.len()
            ),
        ));
    }
    let mut sorted: Vec<usize> = prov_attrs.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != prov_attrs.len() || sorted != (n..got.len()).collect::<Vec<_>>() {
        return Err(violation(
            pass,
            "provenance-schema",
            "root",
            format!(
                "provenance attributes at positions {prov_attrs:?} do not form the \
                 trailing block {n}..{}",
                got.len()
            ),
        ));
    }
    for i in 0..n {
        let (g, e) = (got.column(i), original.column(i));
        if g.name != e.name || !compatible(g.ty, e.ty) {
            return Err(violation(
                pass,
                "provenance-schema",
                "root",
                format!(
                    "original column {i} changed from '{}': {} to '{}': {}",
                    e.name, e.ty, g.name, g.ty
                ),
            ));
        }
    }
    for &p in prov_attrs {
        let c = got.column(p);
        // Computed provenance attributes follow the Perm naming scheme;
        // external ones (`FROM t PROVENANCE (cols)`) keep their source
        // names but are always marked nullable by the rewriter (outer-join
        // padding), which distinguishes them from a mislabeled original.
        if !c.name.starts_with("prov_") && c.qualifier.is_none() && !c.nullable {
            return Err(violation(
                pass,
                "provenance-naming",
                "root",
                format!(
                    "provenance column {p} ('{}') follows neither the \
                     prov_<schema>_<relation>_<attribute> scheme nor the \
                     external-provenance convention (source name, nullable)",
                    c.name
                ),
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Null-rejection certificate for the LEFT → INNER join demotion
// ----------------------------------------------------------------------

/// Which SQL truth values a predicate can take, given partial knowledge of
/// its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Truth {
    t: bool,
    f: bool,
    n: bool,
}

impl Truth {
    const ANY: Truth = Truth {
        t: true,
        f: true,
        n: true,
    };
    fn just(v: Option<bool>) -> Truth {
        match v {
            Some(true) => Truth {
                t: true,
                f: false,
                n: false,
            },
            Some(false) => Truth {
                t: false,
                f: true,
                n: false,
            },
            None => Truth {
                t: false,
                f: false,
                n: true,
            },
        }
    }
    fn not(self) -> Truth {
        Truth {
            t: self.f,
            f: self.t,
            n: self.n,
        }
    }
    /// Three-valued AND over the possible-value sets.
    fn and(self, o: Truth) -> Truth {
        Truth {
            t: self.t && o.t,
            f: self.f || o.f,
            n: (self.n && (o.n || o.t)) || (o.n && self.t),
        }
    }
    /// Three-valued OR over the possible-value sets.
    fn or(self, o: Truth) -> Truth {
        Truth {
            t: self.t || o.t,
            f: self.f && o.f,
            n: (self.n && (o.n || o.f)) || (o.n && self.f),
        }
    }
}

/// Abstract scalar value: definitely SQL NULL, or unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    Null,
    Any,
}

/// True if `pred` can never evaluate to TRUE on a row where every column
/// selected by `is_target` is NULL — the certificate the LEFT→INNER join
/// demotion needs (a null-rejecting predicate over the padded side makes
/// the padding rows unobservable).
///
/// Implemented as a small three-valued abstract interpretation, entirely
/// independent of the optimizer's own syntactic null-rejection test
/// (`rejects_all_null` in the planner), so the verifier cross-checks the
/// optimizer rather than re-running it.
pub fn cannot_hold_on_null(pred: &ScalarExpr, is_target: &dyn Fn(usize) -> bool) -> bool {
    !truth_on_null(pred, is_target).t
}

fn value_on_null(e: &ScalarExpr, is_target: &dyn Fn(usize) -> bool) -> AbsVal {
    match e {
        ScalarExpr::Column(i) if is_target(*i) => AbsVal::Null,
        ScalarExpr::Literal(Value::Null) => AbsVal::Null,
        ScalarExpr::Literal(_) | ScalarExpr::Column(_) | ScalarExpr::OuterColumn { .. } => {
            AbsVal::Any
        }
        // Strict operators: NULL in, NULL out.
        ScalarExpr::Binary { op, left, right } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Concat => {
                if value_on_null(left, is_target) == AbsVal::Null
                    || value_on_null(right, is_target) == AbsVal::Null
                {
                    AbsVal::Null
                } else {
                    AbsVal::Any
                }
            }
            // Boolean-valued operators: consult the truth analysis.
            _ => {
                let t = truth_on_null(e, is_target);
                if t.n && !t.t && !t.f {
                    AbsVal::Null
                } else {
                    AbsVal::Any
                }
            }
        },
        ScalarExpr::Unary {
            op: UnOp::Neg,
            expr,
        } => value_on_null(expr, is_target),
        ScalarExpr::Cast { expr, .. } => value_on_null(expr, is_target),
        // Boolean-valued forms used as scalars: consult the truth
        // analysis (definitely-NULL truth means a NULL value).
        ScalarExpr::Unary { op: UnOp::Not, .. }
        | ScalarExpr::IsNull { .. }
        | ScalarExpr::Like { .. }
        | ScalarExpr::InList { .. } => {
            let t = truth_on_null(e, is_target);
            if t.n && !t.t && !t.f {
                AbsVal::Null
            } else {
                AbsVal::Any
            }
        }
        // Anything else (CASE, COALESCE, sublinks, …) can produce
        // non-NULL output from NULL input; stay conservative.
        _ => AbsVal::Any,
    }
}

fn truth_on_null(pred: &ScalarExpr, is_target: &dyn Fn(usize) -> bool) -> Truth {
    match pred {
        ScalarExpr::Literal(Value::Bool(b)) => Truth::just(Some(*b)),
        ScalarExpr::Literal(Value::Null) => Truth::just(None),
        ScalarExpr::Column(i) if is_target(*i) => Truth::just(None),
        ScalarExpr::Binary { op, left, right } => {
            let (l, r) = (
                value_on_null(left, is_target),
                value_on_null(right, is_target),
            );
            match op {
                BinOp::And => truth_on_null(left, is_target).and(truth_on_null(right, is_target)),
                BinOp::Or => truth_on_null(left, is_target).or(truth_on_null(right, is_target)),
                // Ordinary comparisons are strict: NULL operand → NULL.
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    if l == AbsVal::Null || r == AbsVal::Null {
                        Truth::just(None)
                    } else {
                        Truth::ANY
                    }
                }
                // NULL-safe comparisons never yield NULL.
                BinOp::NotDistinctFrom => {
                    if l == AbsVal::Null && r == AbsVal::Null {
                        Truth::just(Some(true))
                    } else {
                        Truth {
                            t: true,
                            f: true,
                            n: false,
                        }
                    }
                }
                BinOp::DistinctFrom => {
                    if l == AbsVal::Null && r == AbsVal::Null {
                        Truth::just(Some(false))
                    } else {
                        Truth {
                            t: true,
                            f: true,
                            n: false,
                        }
                    }
                }
                _ => Truth::ANY,
            }
        }
        ScalarExpr::Unary {
            op: UnOp::Not,
            expr,
        } => truth_on_null(expr, is_target).not(),
        ScalarExpr::IsNull { expr, negated } => match value_on_null(expr, is_target) {
            AbsVal::Null => Truth::just(Some(!*negated)),
            AbsVal::Any => Truth {
                t: true,
                f: true,
                n: false,
            },
        },
        ScalarExpr::Like { expr, pattern, .. } => {
            if value_on_null(expr, is_target) == AbsVal::Null
                || value_on_null(pattern, is_target) == AbsVal::Null
            {
                Truth::just(None)
            } else {
                Truth::ANY
            }
        }
        ScalarExpr::InList { expr, .. } => {
            // `NULL IN (…)` / `NULL NOT IN (…)` over a non-empty list is
            // NULL (three-valued membership); the parser never produces an
            // empty IN list.
            if value_on_null(expr, is_target) == AbsVal::Null {
                Truth::just(None)
            } else {
                Truth::ANY
            }
        }
        _ => Truth::ANY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::Column;

    fn t_schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Text),
        ])
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: t_schema(),
            provenance_cols: vec![],
        }
    }

    #[test]
    fn well_formed_plan_passes() {
        let plan = LogicalPlan::filter(
            LogicalPlan::project_positions(scan(), &[1, 0]),
            ScalarExpr::binary(
                BinOp::Gt,
                ScalarExpr::Column(1),
                ScalarExpr::Literal(Value::Int(0)),
            ),
        );
        verify_logical(&plan, "test").unwrap();
    }

    #[test]
    fn out_of_bounds_slot_is_named() {
        let plan = LogicalPlan::filter(
            scan(),
            ScalarExpr::eq(ScalarExpr::Column(7), ScalarExpr::Literal(Value::Int(1))),
        );
        let err = verify_logical(&plan, "rule-rewrites").unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(err.message().contains("[rule-rewrites]"), "{err}");
        assert!(err.message().contains("slot-bounds"), "{err}");
        assert!(err.message().contains("Filter"), "{err}");
    }

    #[test]
    fn project_arity_mismatch_is_caught() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![ScalarExpr::Column(0)],
            schema: t_schema(), // two columns declared, one expression
        };
        let err = verify_logical(&plan, "column-pruning").unwrap_err();
        assert!(err.message().contains("schema-arity"), "{err}");
        assert!(err.message().contains("[column-pruning]"), "{err}");
    }

    #[test]
    fn non_boolean_filter_is_rejected() {
        let plan = LogicalPlan::filter(scan(), ScalarExpr::Column(1));
        let err = verify_logical(&plan, "test").unwrap_err();
        assert!(err.message().contains("non-boolean"), "{err}");
    }

    #[test]
    fn schema_preservation_catches_dropped_column() {
        let before = t_schema();
        let after = LogicalPlan::project_positions(scan(), &[0]);
        let err = verify_schema_preserved(&before, &after, "column-pruning").unwrap_err();
        assert!(err.message().contains("schema-preservation"), "{err}");
        assert!(err.message().contains("[column-pruning]"), "{err}");
        let same = LogicalPlan::project_positions(scan(), &[0, 1]);
        verify_schema_preserved(&before, &same, "column-pruning").unwrap();
    }

    #[test]
    fn provenance_contract_checks_trailing_block_and_names() {
        let original = Schema::new(vec![Column::new("a", DataType::Int)]);
        let rewritten = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("prov_public_t_a", DataType::Int),
            ]),
            provenance_cols: vec![],
        };
        verify_provenance_schema(&original, &rewritten, &[1], "provenance-rewrite").unwrap();

        // Provenance positions that are not the trailing block.
        let err = verify_provenance_schema(&original, &rewritten, &[0], "provenance-rewrite")
            .unwrap_err();
        assert!(err.message().contains("provenance-schema"), "{err}");

        // A NOT NULL provenance column that is neither Perm-named nor
        // qualified matches no convention (external provenance attributes
        // are always nullable).
        let bad = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("mystery", DataType::Int).not_null(),
            ]),
            provenance_cols: vec![],
        };
        let err =
            verify_provenance_schema(&original, &bad, &[1], "provenance-rewrite").unwrap_err();
        assert!(err.message().contains("provenance-naming"), "{err}");

        // External provenance: source name kept, marked nullable.
        let external = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("src_system", DataType::Text),
            ]),
            provenance_cols: vec![],
        };
        verify_provenance_schema(&original, &external, &[1], "provenance-rewrite").unwrap();
    }

    // ------------------------------------------------------------------
    // cannot_hold_on_null
    // ------------------------------------------------------------------

    fn target(i: usize) -> bool {
        i >= 2 // columns 2.. are the "padded side"
    }

    #[test]
    fn strict_comparison_rejects_null() {
        // #2 = 1 is NULL when #2 is NULL → can never be TRUE.
        let p = ScalarExpr::eq(ScalarExpr::Column(2), ScalarExpr::Literal(Value::Int(1)));
        assert!(cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn is_null_predicate_holds_on_null() {
        let p = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::Column(2)),
            negated: false,
        };
        assert!(!cannot_hold_on_null(&p, &target));
        let not_null = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::Column(2)),
            negated: true,
        };
        assert!(cannot_hold_on_null(&not_null, &target));
    }

    #[test]
    fn conjunction_needs_only_one_rejecting_side() {
        // (#0 > 5) AND (#2 = 1): the right conjunct can't be TRUE, so the
        // whole AND can't be TRUE.
        let p = ScalarExpr::binary(
            BinOp::And,
            ScalarExpr::binary(
                BinOp::Gt,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::Int(5)),
            ),
            ScalarExpr::eq(ScalarExpr::Column(2), ScalarExpr::Literal(Value::Int(1))),
        );
        assert!(cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn disjunction_with_tolerant_side_can_hold() {
        // (#2 = 1) OR (#0 > 5) can be TRUE via the left-side column.
        let p = ScalarExpr::binary(
            BinOp::Or,
            ScalarExpr::eq(ScalarExpr::Column(2), ScalarExpr::Literal(Value::Int(1))),
            ScalarExpr::binary(
                BinOp::Gt,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::Int(5)),
            ),
        );
        assert!(!cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn null_safe_comparison_tolerates_null() {
        // #2 IS NOT DISTINCT FROM NULL is TRUE on the padded rows.
        let p = ScalarExpr::not_distinct(ScalarExpr::Column(2), ScalarExpr::Literal(Value::Null));
        assert!(!cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn coalesce_is_conservative() {
        // COALESCE(#2, 1) = 1 can be TRUE even when #2 is NULL.
        let p = ScalarExpr::eq(
            ScalarExpr::ScalarFn {
                func: crate::expr::ScalarFunc::Coalesce,
                args: vec![ScalarExpr::Column(2), ScalarExpr::Literal(Value::Int(1))],
            },
            ScalarExpr::Literal(Value::Int(1)),
        );
        assert!(!cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn not_of_tolerant_predicate() {
        // NOT (#2 IS NULL) is FALSE on padded rows → rejecting.
        let p = ScalarExpr::Unary {
            op: UnOp::Not,
            expr: Box::new(ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::Column(2)),
                negated: false,
            }),
        };
        assert!(cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn strict_arithmetic_propagates_null() {
        // (#2 + 1) > 0 is NULL when #2 is NULL.
        let p = ScalarExpr::binary(
            BinOp::Gt,
            ScalarExpr::binary(
                BinOp::Add,
                ScalarExpr::Column(2),
                ScalarExpr::Literal(Value::Int(1)),
            ),
            ScalarExpr::Literal(Value::Int(0)),
        );
        assert!(cannot_hold_on_null(&p, &target));
    }

    #[test]
    fn like_and_in_list_are_strict() {
        let like = ScalarExpr::Like {
            expr: Box::new(ScalarExpr::Column(2)),
            pattern: Box::new(ScalarExpr::Literal(Value::text("a%"))),
            negated: false,
        };
        assert!(cannot_hold_on_null(&like, &target));
        let in_list = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::Column(2)),
            list: vec![ScalarExpr::Literal(Value::Int(1))],
            negated: false,
        };
        assert!(cannot_hold_on_null(&in_list, &target));
    }
}
