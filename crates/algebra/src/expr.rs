//! Bound (positional) scalar expressions.
//!
//! After analysis, column references are *positions* into the input
//! relation's tuple, not names. This is the representation the provenance
//! rewrite rules operate on: appending provenance attributes to an
//! operator's output only shifts positions, never captures names, which is
//! what makes the rules compositional ("the rewrite rules are unaware of how
//! the provenance attributes of their input were produced" — paper §2.2).

use std::fmt;

use perm_types::{DataType, Value};

use crate::plan::LogicalPlan;

/// A bound scalar expression over an input tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A literal value.
    Literal(Value),
    /// A reference to position `0..n` of the input tuple.
    Column(usize),
    /// A reference to a column of an enclosing query's tuple (correlated
    /// subqueries). `levels_up >= 1`.
    OuterColumn {
        levels_up: usize,
        index: usize,
    },
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Unary {
        op: UnOp,
        expr: Box<ScalarExpr>,
    },
    IsNull {
        expr: Box<ScalarExpr>,
        negated: bool,
    },
    Like {
        expr: Box<ScalarExpr>,
        pattern: Box<ScalarExpr>,
        negated: bool,
    },
    InList {
        expr: Box<ScalarExpr>,
        list: Vec<ScalarExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<ScalarExpr>>,
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_branch: Option<Box<ScalarExpr>>,
    },
    Cast {
        expr: Box<ScalarExpr>,
        ty: DataType,
    },
    /// Built-in scalar function call.
    ScalarFn {
        func: ScalarFunc,
        args: Vec<ScalarExpr>,
    },
    /// A sublink: scalar subquery, `[NOT] EXISTS`, or `x [NOT] IN (…)`.
    Subquery(SubqueryExpr),
}

/// A sublink expression holding its own bound subplan.
#[derive(Debug, Clone, PartialEq)]
pub struct SubqueryExpr {
    pub kind: SubqueryKind,
    pub plan: Box<LogicalPlan>,
    pub negated: bool,
    /// The left operand of `IN`; `None` for EXISTS/scalar sublinks.
    pub operand: Option<Box<ScalarExpr>>,
    /// True if any expression inside `plan` references an outer column of
    /// the immediately enclosing query (set by the binder).
    pub correlated: bool,
}

/// The flavor of a sublink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubqueryKind {
    /// `(SELECT …)` used as a value; must yield at most one row.
    Scalar,
    /// `[NOT] EXISTS (SELECT …)`.
    Exists,
    /// `x [NOT] IN (SELECT …)`.
    In,
}

/// Bound binary operators. `NotDistinctFrom` / `DistinctFrom` are the
/// NULL-safe comparisons Perm's aggregation join-back uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    /// `IS NOT DISTINCT FROM` (NULL-safe `=`, never NULL).
    NotDistinctFrom,
    /// `IS DISTINCT FROM` (NULL-safe `<>`, never NULL).
    DistinctFrom,
}

impl BinOp {
    /// True for the comparison operators (result type bool).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::NotEq
                | BinOp::Lt
                | BinOp::LtEq
                | BinOp::Gt
                | BinOp::GtEq
                | BinOp::NotDistinctFrom
                | BinOp::DistinctFrom
        )
    }

    /// True for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL rendering.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
            BinOp::NotDistinctFrom => "IS NOT DISTINCT FROM",
            BinOp::DistinctFrom => "IS DISTINCT FROM",
        }
    }
}

/// Bound unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Upper,
    Lower,
    Length,
    Abs,
    Round,
    Floor,
    Ceil,
    Coalesce,
    NullIf,
    Substr,
    Replace,
    Trim,
    Greatest,
    Least,
}

impl ScalarFunc {
    /// Resolve a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "upper" => ScalarFunc::Upper,
            "lower" => ScalarFunc::Lower,
            "length" | "char_length" => ScalarFunc::Length,
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "coalesce" => ScalarFunc::Coalesce,
            "nullif" => ScalarFunc::NullIf,
            "substr" | "substring" => ScalarFunc::Substr,
            "replace" => ScalarFunc::Replace,
            "trim" => ScalarFunc::Trim,
            "greatest" => ScalarFunc::Greatest,
            "least" => ScalarFunc::Least,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Upper => "upper",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Length => "length",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Round => "round",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::NullIf => "nullif",
            ScalarFunc::Substr => "substr",
            ScalarFunc::Replace => "replace",
            ScalarFunc::Trim => "trim",
            ScalarFunc::Greatest => "greatest",
            ScalarFunc::Least => "least",
        }
    }

    /// `(min_args, max_args)`; `usize::MAX` means variadic.
    pub fn arity(self) -> (usize, usize) {
        match self {
            ScalarFunc::Upper
            | ScalarFunc::Lower
            | ScalarFunc::Length
            | ScalarFunc::Abs
            | ScalarFunc::Floor
            | ScalarFunc::Ceil
            | ScalarFunc::Trim => (1, 1),
            ScalarFunc::Round => (1, 2),
            ScalarFunc::NullIf => (2, 2),
            ScalarFunc::Substr => (2, 3),
            ScalarFunc::Replace => (3, 3),
            ScalarFunc::Coalesce | ScalarFunc::Greatest | ScalarFunc::Least => (1, usize::MAX),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` (arg `None`) or `count(x)` (non-null count).
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// `any_value(x)` — an arbitrary (here: first) value of the group. Also
    /// inserted implicitly for non-grouped columns, SQLite-style, because
    /// the paper's own demo queries select non-grouped columns
    /// (`SELECT count(*), text … GROUP BY v1.mId`, §2.4).
    AnyValue,
}

impl AggFunc {
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "any_value" => AggFunc::AnyValue,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::AnyValue => "any_value",
        }
    }

    /// True if `name` denotes an aggregate function.
    pub fn is_aggregate_name(name: &str) -> bool {
        AggFunc::from_name(name).is_some()
    }
}

/// One aggregate call inside an [`crate::plan::LogicalPlan::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` only for `count(*)`.
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
}

impl ScalarExpr {
    /// Convenience: `left = right`.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Eq, left, right)
    }

    /// Convenience: NULL-safe equality.
    pub fn not_distinct(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::NotDistinctFrom, left, right)
    }

    pub fn binary(op: BinOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// AND-combine a list of predicates; empty list yields TRUE.
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> ScalarExpr {
        match preds.len() {
            0 => ScalarExpr::Literal(Value::Bool(true)),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| ScalarExpr::binary(BinOp::And, acc, p))
            }
        }
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjunction(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            match e {
                ScalarExpr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Visit every column reference position (depth 0 only, not outer refs
    /// and not references inside subplans).
    pub fn for_each_column(&self, f: &mut impl FnMut(usize)) {
        match self {
            ScalarExpr::Column(i) => f(*i),
            ScalarExpr::Literal(_) | ScalarExpr::OuterColumn { .. } => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.for_each_column(f);
                right.for_each_column(f);
            }
            ScalarExpr::Unary { expr, .. } => expr.for_each_column(f),
            ScalarExpr::IsNull { expr, .. } => expr.for_each_column(f),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.for_each_column(f);
                pattern.for_each_column(f);
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.for_each_column(f);
                for e in list {
                    e.for_each_column(f);
                }
            }
            ScalarExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.for_each_column(f);
                }
                for (c, r) in branches {
                    c.for_each_column(f);
                    r.for_each_column(f);
                }
                if let Some(e) = else_branch {
                    e.for_each_column(f);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.for_each_column(f),
            ScalarExpr::ScalarFn { args, .. } => {
                for a in args {
                    a.for_each_column(f);
                }
            }
            ScalarExpr::Subquery(sq) => {
                if let Some(op) = &sq.operand {
                    op.for_each_column(f);
                }
                // Outer references inside the subplan with levels_up == 1
                // reference *this* scope's columns.
                sq.plan.for_each_outer_column(1, f);
            }
        }
    }

    /// The set of depth-0 columns referenced (sorted, deduplicated).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.for_each_column(&mut |i| cols.push(i));
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Rewrite every depth-0 column reference through `map` (e.g. to shift
    /// positions after provenance attributes were inserted).
    pub fn map_columns(&self, map: &impl Fn(usize) -> usize) -> ScalarExpr {
        self.transform(&|e| match e {
            ScalarExpr::Column(i) => ScalarExpr::Column(map(i)),
            other => other,
        })
    }

    /// Bottom-up structural rewrite of this expression (depth 0 only; does
    /// not descend into subquery plans).
    pub fn transform(&self, f: &impl Fn(ScalarExpr) -> ScalarExpr) -> ScalarExpr {
        let rebuilt = match self {
            ScalarExpr::Literal(_) | ScalarExpr::Column(_) | ScalarExpr::OuterColumn { .. } => {
                self.clone()
            }
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(expr.transform(f)),
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            ScalarExpr::Case {
                operand,
                branches,
                else_branch,
            } => ScalarExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.transform(f))),
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_branch: else_branch.as_ref().map(|e| Box::new(e.transform(f))),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.transform(f)),
                ty: *ty,
            },
            ScalarExpr::ScalarFn { func, args } => ScalarExpr::ScalarFn {
                func: *func,
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            ScalarExpr::Subquery(sq) => ScalarExpr::Subquery(SubqueryExpr {
                kind: sq.kind,
                plan: sq.plan.clone(),
                negated: sq.negated,
                operand: sq.operand.as_ref().map(|o| Box::new(o.transform(f))),
                correlated: sq.correlated,
            }),
        };
        f(rebuilt)
    }

    /// True if the expression contains a sublink (at depth 0).
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::Subquery(_)) {
                found = true;
            }
        });
        found
    }

    /// True if the expression can be lowered to a per-batch vectorized
    /// kernel. Sublinks execute whole subplans through the executor and
    /// `CASE` demands lazy per-branch evaluation, so both pin their
    /// containing expression to the row interpreter; everything else has
    /// a (typed or lane-at-a-time) kernel. The physical planner stamps
    /// batch mode with this predicate and the plan verifier re-checks it,
    /// so planner, verifier and kernel lowering cannot drift apart.
    pub fn vectorizable(&self) -> bool {
        let mut ok = true;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::Subquery(_) | ScalarExpr::Case { .. }) {
                ok = false;
            }
        });
        ok
    }

    /// Pre-order visit of the expression tree (depth 0; does not descend
    /// into subquery plans, but does visit the sublink node itself).
    pub fn visit(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Literal(_) | ScalarExpr::Column(_) | ScalarExpr::OuterColumn { .. } => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            ScalarExpr::Unary { expr, .. } | ScalarExpr::IsNull { expr, .. } => expr.visit(f),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            ScalarExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.visit(f),
            ScalarExpr::ScalarFn { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            ScalarExpr::Subquery(sq) => {
                if let Some(op) = &sq.operand {
                    op.visit(f);
                }
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    /// Compact rendering used by the plan printer (`#i` for column `i`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Column(i) => write!(f, "#{i}"),
            ScalarExpr::OuterColumn { levels_up, index } => {
                write!(f, "outer[{levels_up}]#{index}")
            }
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "(NOT {expr})"),
                UnOp::Neg => write!(f, "(-{expr})"),
            },
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            ScalarExpr::ScalarFn { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Subquery(sq) => {
                let neg = if sq.negated { "NOT " } else { "" };
                match sq.kind {
                    SubqueryKind::Scalar => write!(f, "(<subquery>)"),
                    SubqueryKind::Exists => write!(f, "{neg}EXISTS(<subquery>)"),
                    SubqueryKind::In => {
                        let op = sq.operand.as_deref().expect("IN has operand");
                        write!(f, "({op} {neg}IN <subquery>)")
                    }
                }
            }
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.name())?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.arg {
            Some(a) => write!(f, "{a}")?,
            None => write!(f, "*")?,
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_building_and_splitting() {
        let a = ScalarExpr::Column(0);
        let b = ScalarExpr::Column(1);
        let c = ScalarExpr::Column(2);
        let conj = ScalarExpr::conjunction(vec![a.clone(), b.clone(), c.clone()]);
        let parts = conj.split_conjunction();
        assert_eq!(parts, vec![&a, &b, &c]);
        assert_eq!(
            ScalarExpr::conjunction(vec![]),
            ScalarExpr::Literal(Value::Bool(true))
        );
        assert_eq!(ScalarExpr::conjunction(vec![a.clone()]), a);
    }

    #[test]
    fn referenced_columns_dedup_and_sort() {
        let e = ScalarExpr::binary(
            BinOp::Add,
            ScalarExpr::Column(3),
            ScalarExpr::binary(BinOp::Mul, ScalarExpr::Column(1), ScalarExpr::Column(3)),
        );
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn map_columns_shifts_positions() {
        let e = ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(2));
        let shifted = e.map_columns(&|i| i + 10);
        assert_eq!(shifted.referenced_columns(), vec![10, 12]);
    }

    #[test]
    fn map_columns_leaves_outer_refs_alone() {
        let e = ScalarExpr::eq(
            ScalarExpr::Column(0),
            ScalarExpr::OuterColumn {
                levels_up: 1,
                index: 5,
            },
        );
        let shifted = e.map_columns(&|i| i + 1);
        match shifted {
            ScalarExpr::Binary { left, right, .. } => {
                assert_eq!(*left, ScalarExpr::Column(1));
                assert_eq!(
                    *right,
                    ScalarExpr::OuterColumn {
                        levels_up: 1,
                        index: 5
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_compact() {
        let e = ScalarExpr::binary(
            BinOp::Gt,
            ScalarExpr::Column(1),
            ScalarExpr::Literal(Value::Int(5)),
        );
        assert_eq!(e.to_string(), "(#1 > 5)");
        let agg = AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert_eq!(agg.to_string(), "count(*)");
    }

    #[test]
    fn scalar_func_resolution() {
        assert_eq!(ScalarFunc::from_name("UPPER"), Some(ScalarFunc::Upper));
        assert_eq!(
            ScalarFunc::from_name("char_length"),
            Some(ScalarFunc::Length)
        );
        assert_eq!(ScalarFunc::from_name("nope"), None);
        assert!(AggFunc::is_aggregate_name("Count"));
        assert!(!AggFunc::is_aggregate_name("upper"));
    }
}
