//! Interfaces the analyzer needs from the catalog and from the provenance
//! rewriter.
//!
//! The algebra crate defines the *traits*; `perm-storage` implements
//! [`CatalogProvider`] and `perm-rewrite` implements
//! [`ProvenanceTransform`]. This mirrors the paper's architecture
//! (Figure 3): the Parser & Analyzer stage hands the query tree to the
//! Provenance Rewriter, which returns an ordinary query tree.

use perm_sql::{ContributionSemantics, Query};
use perm_types::{Result, Schema};

use crate::plan::LogicalPlan;

/// What the analyzer needs to know about a base table.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseTableMeta {
    pub schema: Schema,
    /// Positions of columns recorded as provenance attributes (eager
    /// provenance metadata); empty for ordinary tables.
    pub provenance_cols: Vec<usize>,
}

/// Catalog lookups performed during analysis.
pub trait CatalogProvider {
    /// Base-table metadata, or `None` if `name` is not a base table.
    fn base_table(&self, name: &str) -> Option<BaseTableMeta>;

    /// A view's defining query, or `None` if `name` is not a view.
    fn view_definition(&self, name: &str) -> Option<Query>;
}

/// An empty catalog (tests, expression-only binding).
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyCatalog;

impl CatalogProvider for EmptyCatalog {
    fn base_table(&self, _name: &str) -> Option<BaseTableMeta> {
        None
    }

    fn view_definition(&self, _name: &str) -> Option<Query> {
        None
    }
}

/// The provenance of a plan: the rewritten plan plus the positions of its
/// provenance attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenancePlan {
    pub plan: LogicalPlan,
    /// Positions (in `plan.schema()`) of the provenance attributes.
    pub prov_attrs: Vec<usize>,
}

/// The provenance rewriter as seen by the analyzer: invoked when a
/// `SELECT PROVENANCE` clause is encountered, it transforms the bound plan
/// `q` into `q+`.
pub trait ProvenanceTransform {
    fn rewrite_provenance(
        &self,
        plan: LogicalPlan,
        semantics: Option<ContributionSemantics>,
    ) -> Result<ProvenancePlan>;
}
