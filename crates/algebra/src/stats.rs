//! The unified cardinality/cost estimator.
//!
//! One trait — [`CardinalityEstimator`] — feeds **both** consumers of
//! cardinality information in the pipeline:
//!
//! * the provenance rewriter's cost-based *strategy* chooser
//!   (`perm_rewrite::cost` re-exports this module), which ranks
//!   alternative rewrites of the same operator, and
//! * the executor's *physical* planner, which picks join order, join
//!   strategy (hash / nested-loop / index-nested-loop), build sides and
//!   index scans.
//!
//! Implementations back the trait with whatever they know: the storage
//! catalog exposes exact row counts, per-column distinct counts and hash
//! index availability (`perm_exec::CatalogStats`); tests pin fixed numbers
//! with [`FixedCardinalities`]; [`UnknownCardinality`] knows nothing and
//! makes every estimate fall back to the classic textbook constants.
//!
//! Estimates are deliberately simple — row counts and `1/n_distinct`
//! selectivities, no histograms — because what matters for Perm is that
//! the rewrite-strategy chooser and the planner share one source of
//! cardinality truth instead of disagreeing about the same plan.

use std::collections::HashMap;

use crate::expr::{BinOp, ScalarExpr};
use crate::plan::{JoinType, LogicalPlan, SetOpType};

/// Source of base-table statistics. Everything defaults to "unknown", so
/// minimal implementations only answer [`table_rows`](Self::table_rows).
pub trait CardinalityEstimator {
    /// Exact or estimated row count of a base table, if known.
    fn table_rows(&self, table: &str) -> Option<f64>;

    /// Number of distinct non-null values in `column` of `table`, if known.
    fn column_distinct(&self, _table: &str, _column: usize) -> Option<f64> {
        None
    }

    /// True if `column` of `table` has a hash index (point lookups are
    /// cheap). Used by the physical planner, not by cardinality math.
    fn has_index(&self, _table: &str, _column: usize) -> bool {
        false
    }
}

/// An estimator that knows nothing; every table defaults to 1000 rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnknownCardinality;

impl CardinalityEstimator for UnknownCardinality {
    fn table_rows(&self, _table: &str) -> Option<f64> {
        None
    }
}

/// A fixed per-table cardinality map (tests, benches).
#[derive(Debug, Default, Clone)]
pub struct FixedCardinalities(pub HashMap<String, f64>);

impl CardinalityEstimator for FixedCardinalities {
    fn table_rows(&self, table: &str) -> Option<f64> {
        self.0.get(&table.to_ascii_lowercase()).copied()
    }
}

/// Default row count assumed for unknown tables.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Default selectivity of a filter predicate.
const FILTER_SELECTIVITY: f64 = 0.5;
/// Default selectivity of a join condition.
const JOIN_SELECTIVITY: f64 = 0.1;
/// Default selectivity of one equality conjunct.
const EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity of one range/LIKE conjunct.
const RANGE_SELECTIVITY: f64 = 0.3;

/// Where a plan column comes from, when that is a base-table column
/// visible through identity projections. Used to look up per-column
/// statistics for selectivity estimates (also by the executor's join
/// reorderer, whose leaves are pruned `Project → Scan` chains).
pub fn resolve_base_column(plan: &LogicalPlan, col: usize) -> Option<(&str, usize)> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some((table.as_str(), col)),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            ScalarExpr::Column(i) => resolve_base_column(input, *i),
            _ => None,
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Boundary { input, .. }
        | LogicalPlan::Distinct { input } => resolve_base_column(input, col),
        LogicalPlan::Join {
            left, right, kind, ..
        } if kind.produces_both_sides() => {
            let nl = left.arity();
            if col < nl {
                resolve_base_column(left, col)
            } else {
                resolve_base_column(right, col - nl)
            }
        }
        LogicalPlan::Join { left, .. } => resolve_base_column(left, col),
        _ => None,
    }
}

/// Distinct count of a plan column, when it traces to a base column with
/// known statistics.
pub fn column_distinct(
    plan: &LogicalPlan,
    col: usize,
    est: &dyn CardinalityEstimator,
) -> Option<f64> {
    let (table, base_col) = resolve_base_column(plan, col)?;
    est.column_distinct(table, base_col)
}

/// Estimated selectivity of one conjunct over `input`.
fn conjunct_selectivity(
    c: &ScalarExpr,
    input: &LogicalPlan,
    est: &dyn CardinalityEstimator,
) -> f64 {
    match c {
        ScalarExpr::Binary { op, left, right } => match op {
            BinOp::Eq | BinOp::NotDistinctFrom => {
                // `col = literal`: 1 / n_distinct when stats know the column.
                let col = match (left.as_ref(), right.as_ref()) {
                    (ScalarExpr::Column(i), ScalarExpr::Literal(_))
                    | (ScalarExpr::Literal(_), ScalarExpr::Column(i)) => Some(*i),
                    _ => None,
                };
                col.and_then(|i| column_distinct(input, i, est))
                    .map_or(EQ_SELECTIVITY, |d| (1.0 / d.max(1.0)).min(1.0))
            }
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => RANGE_SELECTIVITY,
            BinOp::NotEq | BinOp::DistinctFrom => 1.0 - EQ_SELECTIVITY,
            _ => FILTER_SELECTIVITY,
        },
        ScalarExpr::Like { .. } => RANGE_SELECTIVITY,
        ScalarExpr::InList { list, negated, .. } => {
            let s = (EQ_SELECTIVITY * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        ScalarExpr::IsNull { negated: false, .. } => EQ_SELECTIVITY,
        ScalarExpr::IsNull { negated: true, .. } => 1.0 - EQ_SELECTIVITY,
        ScalarExpr::Literal(v) if v.is_null() => 0.0,
        _ => FILTER_SELECTIVITY,
    }
}

/// Estimated selectivity of a (possibly conjunctive) predicate over
/// `input`. Conjunct selectivities multiply (independence assumption),
/// floored so a long conjunction never rounds to zero rows.
pub fn predicate_selectivity(
    pred: &ScalarExpr,
    input: &LogicalPlan,
    est: &dyn CardinalityEstimator,
) -> f64 {
    pred.split_conjunction()
        .iter()
        .map(|c| conjunct_selectivity(c, input, est))
        .product::<f64>()
        .clamp(1e-4, 1.0)
}

/// Estimated selectivity of a join condition between `left` and `right`
/// (columns `>= left.arity()` refer to the right input). Equi-conjuncts
/// use `1/max(d_left, d_right)` when the key columns have known distinct
/// counts; everything else falls back to the textbook constant.
pub fn join_selectivity(
    cond: &ScalarExpr,
    left: &LogicalPlan,
    right: &LogicalPlan,
    est: &dyn CardinalityEstimator,
) -> f64 {
    let nl = left.arity();
    let mut sel = 1.0f64;
    for c in cond.split_conjunction() {
        let s = match c {
            ScalarExpr::Binary {
                op: BinOp::Eq | BinOp::NotDistinctFrom,
                left: a,
                right: b,
            } => {
                let key = |e: &ScalarExpr| match e {
                    ScalarExpr::Column(i) => Some(*i),
                    _ => None,
                };
                match (key(a), key(b)) {
                    (Some(x), Some(y)) if (x < nl) != (y < nl) => {
                        let (l, r) = if x < nl { (x, y) } else { (y, x) };
                        let dl = column_distinct(left, l, est);
                        let dr = column_distinct(right, r - nl, est);
                        match (dl, dr) {
                            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
                            (Some(d), None) | (None, Some(d)) => 1.0 / d.max(1.0),
                            (None, None) => JOIN_SELECTIVITY,
                        }
                    }
                    _ => JOIN_SELECTIVITY,
                }
            }
            _ => FILTER_SELECTIVITY,
        };
        sel *= s;
    }
    sel.clamp(1e-6, 1.0)
}

/// Estimate the output cardinality of a logical plan.
pub fn estimate_rows(plan: &LogicalPlan, est: &dyn CardinalityEstimator) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            est.table_rows(table).unwrap_or(DEFAULT_TABLE_ROWS).max(1.0)
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Boundary { input, .. } => estimate_rows(input, est),
        LogicalPlan::Filter { input, predicate } => {
            estimate_rows(input, est) * predicate_selectivity(predicate, input, est)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            ..
        } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            match kind {
                JoinType::Cross => l * r,
                JoinType::Semi | JoinType::Anti => l * FILTER_SELECTIVITY,
                _ if condition.is_none() => l * r,
                JoinType::Left | JoinType::Full => {
                    let sel = condition
                        .as_ref()
                        .map_or(JOIN_SELECTIVITY, |c| join_selectivity(c, left, right, est));
                    (l * r * sel).max(l)
                }
                _ => {
                    let sel = condition
                        .as_ref()
                        .map_or(JOIN_SELECTIVITY, |c| join_selectivity(c, left, right, est));
                    (l * r * sel).max(1.0)
                }
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let n = estimate_rows(input, est);
            if group_by.is_empty() {
                1.0
            } else {
                // Distinct count of a single grouping column bounds the
                // group count; otherwise the square-root heuristic.
                let by_stats = match group_by.as_slice() {
                    [ScalarExpr::Column(c)] => column_distinct(input, *c, est),
                    _ => None,
                };
                by_stats.map_or_else(|| n.sqrt().max(1.0), |d| d.min(n).max(1.0))
            }
        }
        LogicalPlan::Distinct { input } => estimate_rows(input, est) * 0.8,
        LogicalPlan::SetOp {
            op, left, right, ..
        } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            match op {
                SetOpType::Union => l + r,
                SetOpType::Intersect => l.min(r) * 0.5,
                SetOpType::Except => l * 0.5,
            }
        }
        LogicalPlan::Limit { input, limit, .. } => {
            let n = estimate_rows(input, est);
            match limit {
                Some(l) => n.min(*l as f64),
                None => n,
            }
        }
    }
}

/// Estimate the *processing cost* of a plan: the sum of the rows every
/// operator touches. This is the quantity the cost-based strategy chooser
/// compares between alternative rewrites, and the logical join reorderer
/// compares between join orders.
pub fn estimate_cost(plan: &LogicalPlan, est: &dyn CardinalityEstimator) -> f64 {
    let own = match plan {
        // Joins cost the product of their input sizes under nested-loop
        // pessimism, damped for equi-join-friendly shapes.
        LogicalPlan::Join { left, right, .. } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            l + r + (l * r).sqrt() * 2.0
        }
        other => estimate_rows(other, est),
    };
    own + plan
        .children()
        .into_iter()
        .map(|c| estimate_cost(c, est))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::{Column, DataType, Schema, Value};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
            provenance_cols: vec![],
        }
    }

    fn fixed(pairs: &[(&str, f64)]) -> FixedCardinalities {
        FixedCardinalities(pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect())
    }

    /// Fixed rows plus a fixed distinct count for every column.
    struct WithDistinct(FixedCardinalities, f64);

    impl CardinalityEstimator for WithDistinct {
        fn table_rows(&self, table: &str) -> Option<f64> {
            self.0.table_rows(table)
        }
        fn column_distinct(&self, table: &str, _column: usize) -> Option<f64> {
            self.0.table_rows(table).map(|_| self.1)
        }
    }

    #[test]
    fn scan_rows_come_from_estimator() {
        let est = fixed(&[("t", 42.0)]);
        assert_eq!(estimate_rows(&scan("t"), &est), 42.0);
        assert_eq!(estimate_rows(&scan("u"), &est), DEFAULT_TABLE_ROWS);
    }

    #[test]
    fn filter_halves_and_union_adds() {
        let est = fixed(&[("a", 100.0), ("b", 300.0)]);
        let f = LogicalPlan::filter(scan("a"), ScalarExpr::Literal(Value::Bool(true)));
        assert_eq!(estimate_rows(&f, &est), 50.0);
        let u = LogicalPlan::SetOp {
            op: SetOpType::Union,
            all: true,
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
        };
        assert_eq!(estimate_rows(&u, &est), 400.0);
    }

    #[test]
    fn eq_filter_uses_distinct_counts() {
        let est = WithDistinct(fixed(&[("a", 1000.0)]), 50.0);
        let f = LogicalPlan::filter(
            scan("a"),
            ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(7))),
        );
        // 1000 rows / 50 distinct values = 20 matching rows.
        assert!((estimate_rows(&f, &est) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn equi_join_uses_distinct_counts() {
        let est = WithDistinct(fixed(&[("a", 1000.0), ("b", 100.0)]), 100.0);
        let j = LogicalPlan::join(
            scan("a"),
            scan("b"),
            JoinType::Inner,
            Some(ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1))),
        )
        .unwrap();
        // sel = 1/max(100,100); 1000 * 100 / 100 = 1000.
        assert!((estimate_rows(&j, &est) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cost_grows_with_plan_size() {
        let est = fixed(&[("a", 100.0)]);
        let simple = scan("a");
        let bigger = LogicalPlan::join(scan("a"), scan("a"), JoinType::Cross, None).unwrap();
        assert!(estimate_cost(&bigger, &est) > estimate_cost(&simple, &est));
    }

    #[test]
    fn global_aggregate_is_one_row() {
        let est = UnknownCardinality;
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("a")),
            group_by: vec![],
            aggs: vec![],
            schema: Schema::empty(),
        };
        assert_eq!(estimate_rows(&agg, &est), 1.0);
    }

    #[test]
    fn base_columns_resolve_through_projections() {
        let p = LogicalPlan::project_positions(scan("t"), &[0]);
        assert_eq!(resolve_base_column(&p, 0), Some(("t", 0)));
        let f = LogicalPlan::filter(p, ScalarExpr::Literal(Value::Bool(true)));
        assert_eq!(resolve_base_column(&f, 0), Some(("t", 0)));
    }
}
