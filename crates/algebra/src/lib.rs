//! # perm-algebra
//!
//! Logical relational algebra and the analyzer/binder for the Perm
//! provenance management system.
//!
//! The crate provides the three middle artifacts of the paper's Figure 3
//! pipeline:
//!
//! * [`plan::LogicalPlan`] — the bound query tree (positional expressions,
//!   schema-carrying operators) that the provenance rewriter transforms;
//! * [`binder::Binder`] — the "Parser & Analyzer" stage: name resolution,
//!   typing, view unfolding, and dispatch into the provenance rewriter via
//!   the [`catalog::ProvenanceTransform`] trait when `SELECT PROVENANCE`
//!   appears;
//! * [`printer`] / [`deparse()`] — the algebra-tree and SQL renderings the
//!   Perm-browser shows (Figure 4 markers 2–4);
//! * [`verify`] — the static plan verifier that checks operator/child
//!   schema consistency, expression typing and the provenance-rewrite
//!   contract after every plan transformation in debug and test builds.

#![forbid(unsafe_code)]

pub mod binder;
pub mod catalog;
pub mod deparse;
pub mod expr;
pub mod plan;
pub mod printer;
pub mod stats;
pub mod typecheck;
pub mod verify;

pub use binder::{bind_statement, Binder, BoundStatement};
pub use catalog::{
    BaseTableMeta, CatalogProvider, EmptyCatalog, ProvenancePlan, ProvenanceTransform,
};
pub use deparse::deparse;
pub use expr::{AggCall, AggFunc, BinOp, ScalarExpr, ScalarFunc, SubqueryExpr, SubqueryKind, UnOp};
pub use plan::{BoundaryKind, JoinType, LogicalPlan, SetOpType, SortKey};
pub use printer::{plan_tree, plan_tree_with_schema};
pub use stats::{CardinalityEstimator, FixedCardinalities, UnknownCardinality};
pub use typecheck::{agg_type, expr_type};
pub use verify::{
    cannot_hold_on_null, verify_logical, verify_provenance_schema, verify_schema_preserved,
};
