//! Binder tests over a mock catalog shaped like the paper's Figure 1
//! database.

use super::*;
use crate::catalog::BaseTableMeta;
use perm_sql::parse_statement;
use std::collections::HashMap;

/// A mock catalog with the Figure 1 tables and view v1.
struct MockCatalog {
    tables: HashMap<String, BaseTableMeta>,
    views: HashMap<String, Query>,
}

impl MockCatalog {
    fn forum() -> MockCatalog {
        let mut tables = HashMap::new();
        let table = |cols: &[(&str, DataType)]| BaseTableMeta {
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Column::new(*n, *t))
                    .collect::<Vec<_>>(),
            ),
            provenance_cols: vec![],
        };
        tables.insert(
            "messages".into(),
            table(&[
                ("mid", DataType::Int),
                ("text", DataType::Text),
                ("uid", DataType::Int),
            ]),
        );
        tables.insert(
            "users".into(),
            table(&[("uid", DataType::Int), ("name", DataType::Text)]),
        );
        tables.insert(
            "imports".into(),
            table(&[
                ("mid", DataType::Int),
                ("text", DataType::Text),
                ("origin", DataType::Text),
            ]),
        );
        tables.insert(
            "approved".into(),
            table(&[("uid", DataType::Int), ("mid", DataType::Int)]),
        );
        let mut views = HashMap::new();
        let q1 = match parse_statement(
            "SELECT mid, text FROM messages UNION SELECT mid, text FROM imports",
        )
        .unwrap()
        {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        views.insert("v1".into(), q1);
        MockCatalog { tables, views }
    }
}

impl CatalogProvider for MockCatalog {
    fn base_table(&self, name: &str) -> Option<BaseTableMeta> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    fn view_definition(&self, name: &str) -> Option<Query> {
        self.views.get(&name.to_ascii_lowercase()).cloned()
    }
}

fn bind(sql: &str) -> Result<LogicalPlan> {
    let cat = MockCatalog::forum();
    let stmt = parse_statement(sql)?;
    match bind_statement(&stmt, &cat, None)? {
        BoundStatement::Query(p) => Ok(p),
        other => panic!("expected query, got {other:?}"),
    }
}

fn bind_ok(sql: &str) -> LogicalPlan {
    bind(sql).unwrap_or_else(|e| panic!("bind of {sql:?} failed: {e}"))
}

// ----------------------------------------------------------------------
// Basic shapes
// ----------------------------------------------------------------------

#[test]
fn select_star_projects_all_columns() {
    let p = bind_ok("SELECT * FROM messages");
    assert_eq!(p.arity(), 3);
    assert_eq!(p.schema().names(), vec!["mid", "text", "uid"]);
    assert!(matches!(p, LogicalPlan::Project { .. }));
}

#[test]
fn aliases_requalify_columns() {
    let p = bind_ok("SELECT m.mid FROM messages m");
    assert_eq!(p.schema().names(), vec!["mid"]);
    // Alias resolution works; the original name does not.
    assert!(bind("SELECT messages.mid FROM messages m").is_err());
}

#[test]
fn missing_table_and_column_errors() {
    assert!(bind("SELECT * FROM nonexistent").is_err());
    let err = bind("SELECT nope FROM messages").unwrap_err();
    assert_eq!(err.kind(), "analysis");
    assert!(err.message().contains("nope"));
}

#[test]
fn ambiguous_column_is_an_error() {
    // Both messages and approved have `mid` and `uid`.
    let err = bind("SELECT mid FROM messages, approved").unwrap_err();
    assert!(err.message().contains("ambiguous"), "{err}");
}

#[test]
fn where_clause_must_be_boolean() {
    let err = bind("SELECT mid FROM messages WHERE mid + 1").unwrap_err();
    assert!(err.message().contains("boolean"), "{err}");
}

#[test]
fn comparison_type_mismatch_is_caught() {
    assert!(bind("SELECT mid FROM messages WHERE mid = text").is_err());
}

#[test]
fn select_without_from_uses_one_empty_row() {
    let p = bind_ok("SELECT 1 + 2 AS three");
    assert_eq!(p.schema().names(), vec!["three"]);
    match &p {
        LogicalPlan::Project { input, .. } => {
            assert!(matches!(**input, LogicalPlan::Values { .. }));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn output_naming_rules() {
    let p = bind_ok("SELECT mid, mid AS m2, count(*) FROM messages GROUP BY mid");
    assert_eq!(p.schema().names(), vec!["mid", "m2", "count"]);
    let p2 = bind_ok("SELECT 1 + 1 FROM messages");
    assert_eq!(p2.schema().names(), vec!["?column?"]);
    let p3 = bind_ok("SELECT upper(text) FROM messages");
    assert_eq!(p3.schema().names(), vec!["upper"]);
}

// ----------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------

#[test]
fn inner_join_binds_condition_positionally() {
    let p = bind_ok("SELECT name FROM users u JOIN approved a ON u.uid = a.uid");
    fn find_join(p: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(p, LogicalPlan::Join { .. }) {
            return Some(p);
        }
        p.children().into_iter().find_map(find_join)
    }
    let j = find_join(&p).expect("join node");
    match j {
        LogicalPlan::Join {
            kind, condition, ..
        } => {
            assert_eq!(*kind, JoinType::Inner);
            let cond = condition.as_ref().unwrap();
            // u.uid is position 0, a.uid is position 2 (users has 2 cols).
            assert_eq!(cond.referenced_columns(), vec![0, 2]);
        }
        _ => unreachable!(),
    }
}

#[test]
fn right_join_normalizes_to_left_with_reorder() {
    let p = bind_ok("SELECT * FROM users u RIGHT JOIN approved a ON u.uid = a.uid");
    // Schema order must still be users-then-approved.
    assert_eq!(p.schema().names(), vec!["uid", "name", "uid", "mid"]);
    // users' side (the padded side) must be nullable.
    assert!(p.schema().column(0).nullable);
    // And somewhere inside there is a Left join with approved on the left.
    let tree = crate::printer::plan_tree(&p);
    assert!(tree.contains("LeftJoin"), "{tree}");
}

#[test]
fn left_join_marks_right_side_nullable() {
    let p = bind_ok("SELECT * FROM users u LEFT JOIN approved a ON u.uid = a.uid");
    assert!(!p.schema().column(0).nullable || p.schema().column(0).nullable); // users keeps declared nullability
    assert!(p.schema().column(2).nullable);
    assert!(p.schema().column(3).nullable);
}

#[test]
fn cross_join_via_comma() {
    let p = bind_ok("SELECT * FROM users, approved");
    assert_eq!(p.arity(), 4);
}

// ----------------------------------------------------------------------
// Views
// ----------------------------------------------------------------------

#[test]
fn view_is_unfolded_and_requalified() {
    let p = bind_ok("SELECT v1.mid FROM v1");
    assert_eq!(p.schema().names(), vec!["mid"]);
    // The view body (a UNION) must be present in the plan.
    let tree = crate::printer::plan_tree(&p);
    assert!(tree.contains("Union"), "{tree}");
    assert!(tree.contains("Scan(messages)"), "{tree}");
    assert!(tree.contains("Scan(imports)"), "{tree}");
}

#[test]
fn view_alias_is_visible() {
    let p = bind_ok("SELECT w.text FROM v1 w");
    assert_eq!(p.schema().names(), vec!["text"]);
}

#[test]
fn q3_binds_the_paper_aggregation() {
    // q3 of Figure 1.
    let p = bind_ok(
        "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mId = a.mId) \
         GROUP BY v1.mId, text",
    );
    assert_eq!(p.schema().names(), vec!["count", "text"]);
}

// ----------------------------------------------------------------------
// Aggregation
// ----------------------------------------------------------------------

#[test]
fn aggregate_node_shape() {
    let p = bind_ok("SELECT uid, count(*), sum(mid) FROM approved GROUP BY uid");
    fn find_agg(p: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(p, LogicalPlan::Aggregate { .. }) {
            return Some(p);
        }
        p.children().into_iter().find_map(find_agg)
    }
    match find_agg(&p).expect("aggregate node") {
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            schema,
            ..
        } => {
            assert_eq!(group_by.len(), 1);
            assert_eq!(aggs.len(), 2);
            assert_eq!(schema.names(), vec!["uid", "count", "sum"]);
        }
        _ => unreachable!(),
    }
}

#[test]
fn having_filters_above_aggregate() {
    let p = bind_ok("SELECT uid FROM approved GROUP BY uid HAVING count(*) > 1");
    let tree = crate::printer::plan_tree(&p);
    // Filter must sit between Project and Aggregate.
    let filter_pos = tree.find("Filter").expect("filter in tree");
    let agg_pos = tree.find("Aggregate").expect("aggregate in tree");
    assert!(filter_pos < agg_pos, "{tree}");
}

#[test]
fn shared_aggregate_is_deduplicated() {
    let p = bind_ok("SELECT uid, count(*) FROM approved GROUP BY uid HAVING count(*) > 1");
    fn find_agg(p: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(p, LogicalPlan::Aggregate { .. }) {
            return Some(p);
        }
        p.children().into_iter().find_map(find_agg)
    }
    match find_agg(&p).expect("aggregate") {
        LogicalPlan::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
        _ => unreachable!(),
    }
}

#[test]
fn non_grouped_column_becomes_any_value() {
    // The paper's §2.4 query selects `text` while grouping on v1.mId only;
    // we follow SQLite's leniency with an implicit any_value.
    let p = bind_ok("SELECT count(*), text FROM messages GROUP BY mid");
    fn find_agg(p: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(p, LogicalPlan::Aggregate { .. }) {
            return Some(p);
        }
        p.children().into_iter().find_map(find_agg)
    }
    match find_agg(&p).expect("aggregate") {
        LogicalPlan::Aggregate { aggs, .. } => {
            assert_eq!(aggs.len(), 2);
            assert_eq!(aggs[1].func, AggFunc::AnyValue);
        }
        _ => unreachable!(),
    }
}

#[test]
fn having_without_group_by_or_aggregate_is_rejected() {
    assert!(bind("SELECT mid FROM messages HAVING mid > 1").is_err());
}

#[test]
fn nested_aggregates_are_rejected() {
    assert!(bind("SELECT count(sum(mid)) FROM messages").is_err());
}

#[test]
fn global_aggregate_without_group_by() {
    let p = bind_ok("SELECT count(*) FROM messages");
    assert_eq!(p.schema().names(), vec!["count"]);
}

#[test]
fn group_by_expression_matches_select_item() {
    let p = bind_ok("SELECT mid + 1 FROM messages GROUP BY mid + 1");
    assert_eq!(p.arity(), 1);
}

// ----------------------------------------------------------------------
// Set operations
// ----------------------------------------------------------------------

#[test]
fn union_checks_arity() {
    let err = bind("SELECT mid FROM messages UNION SELECT mid, text FROM imports").unwrap_err();
    assert!(err.message().contains("same number of columns"));
}

#[test]
fn union_unifies_types_with_casts() {
    // Int union Float -> Float on both sides.
    let p = bind_ok("SELECT mid FROM messages UNION SELECT 2.5");
    assert_eq!(p.schema().column(0).ty, DataType::Float);
}

#[test]
fn union_incompatible_types_error() {
    assert!(bind("SELECT mid FROM messages UNION SELECT text FROM messages").is_err());
}

#[test]
fn q1_binds_with_set_op() {
    let p = bind_ok("SELECT mId, text FROM messages UNION SELECT mId, text FROM imports");
    assert!(matches!(
        p,
        LogicalPlan::SetOp {
            op: SetOpType::Union,
            all: false,
            ..
        }
    ));
    assert_eq!(p.schema().names(), vec!["mid", "text"]);
}

// ----------------------------------------------------------------------
// ORDER BY / LIMIT
// ----------------------------------------------------------------------

#[test]
fn order_by_position_and_name() {
    let p = bind_ok("SELECT mid, text FROM messages ORDER BY 2 DESC, mid");
    match &p {
        LogicalPlan::Sort { keys, .. } => {
            assert_eq!(keys.len(), 2);
            assert_eq!(keys[0].expr, ScalarExpr::Column(1));
            assert!(keys[0].desc);
            assert_eq!(keys[1].expr, ScalarExpr::Column(0));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn order_by_position_out_of_range() {
    assert!(bind("SELECT mid FROM messages ORDER BY 3").is_err());
    assert!(bind("SELECT mid FROM messages ORDER BY 0").is_err());
}

#[test]
fn limit_offset_node() {
    let p = bind_ok("SELECT mid FROM messages LIMIT 5 OFFSET 2");
    match &p {
        LogicalPlan::Limit { limit, offset, .. } => {
            assert_eq!(*limit, Some(5));
            assert_eq!(*offset, 2);
        }
        other => panic!("unexpected {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Subqueries and sublinks
// ----------------------------------------------------------------------

#[test]
fn derived_table_binding() {
    let p = bind_ok("SELECT s.m FROM (SELECT mid AS m FROM messages) s WHERE s.m > 1");
    assert_eq!(p.schema().names(), vec!["m"]);
}

#[test]
fn uncorrelated_in_subquery() {
    let p = bind_ok("SELECT mid FROM messages WHERE mid IN (SELECT mid FROM approved)");
    let mut found = false;
    p.visit_all_exprs(&mut |e| {
        if let ScalarExpr::Subquery(sq) = e {
            assert_eq!(sq.kind, SubqueryKind::In);
            assert!(!sq.correlated);
            found = true;
        }
    });
    assert!(found);
}

#[test]
fn correlated_exists_subquery() {
    let p = bind_ok(
        "SELECT name FROM users u WHERE EXISTS \
         (SELECT 1 FROM approved a WHERE a.uid = u.uid)",
    );
    let mut correlated = false;
    p.visit_all_exprs(&mut |e| {
        if let ScalarExpr::Subquery(sq) = e {
            correlated |= sq.correlated;
        }
    });
    assert!(correlated, "EXISTS over u.uid must be marked correlated");
}

#[test]
fn scalar_subquery_must_have_one_column() {
    assert!(bind("SELECT (SELECT mid, text FROM messages) FROM users").is_err());
    assert!(bind("SELECT mid FROM messages WHERE mid IN (SELECT mid, uid FROM approved)").is_err());
}

#[test]
fn in_subquery_in_select_list() {
    let p = bind_ok("SELECT mid IN (SELECT mid FROM approved) AS appr FROM messages");
    assert_eq!(p.schema().names(), vec!["appr"]);
    assert_eq!(p.schema().column(0).ty, DataType::Bool);
}

// ----------------------------------------------------------------------
// SQL-PLE boundaries
// ----------------------------------------------------------------------

#[test]
fn baserelation_wraps_in_boundary() {
    // Bind a non-provenance query so no rewriter is needed.
    let p = bind_ok("SELECT text FROM v1 BASERELATION");
    let tree = crate::printer::plan_tree(&p);
    assert!(tree.contains("BaseRelation(v1)"), "{tree}");
}

#[test]
fn provenance_attrs_modifier_resolves_names() {
    let p = bind_ok("SELECT * FROM imports PROVENANCE (origin)");
    fn find_boundary(p: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(p, LogicalPlan::Boundary { .. }) {
            return Some(p);
        }
        p.children().into_iter().find_map(find_boundary)
    }
    match find_boundary(&p).expect("boundary") {
        LogicalPlan::Boundary {
            kind: BoundaryKind::External { attrs },
            name,
            ..
        } => {
            assert_eq!(name, "imports");
            assert_eq!(attrs, &[2]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn provenance_attrs_modifier_unknown_name_errors() {
    let err = bind("SELECT * FROM imports PROVENANCE (nope)").unwrap_err();
    assert!(err.message().contains("nope"));
}

#[test]
fn select_provenance_without_rewriter_is_an_error() {
    let err = bind("SELECT PROVENANCE mid FROM messages").unwrap_err();
    assert_eq!(err.kind(), "rewrite");
}

// ----------------------------------------------------------------------
// Statements
// ----------------------------------------------------------------------

#[test]
fn bind_create_table() {
    let cat = MockCatalog::forum();
    let stmt = parse_statement("CREATE TABLE t (a int NOT NULL, b text)").unwrap();
    match bind_statement(&stmt, &cat, None).unwrap() {
        BoundStatement::CreateTable { name, schema } => {
            assert_eq!(name, "t");
            assert!(!schema.column(0).nullable);
            assert!(schema.column(1).nullable);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn bind_insert_reorders_columns_and_pads_nulls() {
    let cat = MockCatalog::forum();
    let stmt = parse_statement("INSERT INTO messages (text, mid) VALUES ('hi', 9)").unwrap();
    match bind_statement(&stmt, &cat, None).unwrap() {
        BoundStatement::Insert { rows, .. } => {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], ScalarExpr::Literal(Value::Int(9)));
            assert_eq!(rows[0][1], ScalarExpr::Literal(Value::text("hi")));
            assert_eq!(rows[0][2], ScalarExpr::Literal(Value::Null));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn bind_insert_arity_mismatch() {
    let cat = MockCatalog::forum();
    let stmt = parse_statement("INSERT INTO messages (text, mid) VALUES ('hi')").unwrap();
    assert!(bind_statement(&stmt, &cat, None).is_err());
}

#[test]
fn bind_create_view_validates_definition() {
    let cat = MockCatalog::forum();
    let good = parse_statement("CREATE VIEW ok AS SELECT mid FROM messages").unwrap();
    assert!(bind_statement(&good, &cat, None).is_ok());
    let bad = parse_statement("CREATE VIEW bad AS SELECT nope FROM messages").unwrap();
    assert!(bind_statement(&bad, &cat, None).is_err());
}
