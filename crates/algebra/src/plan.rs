//! The logical relational algebra.
//!
//! This is the representation the Perm pipeline carries between analysis,
//! provenance rewrite and planning (the "query tree" of the paper's
//! Figure 3). Every operator knows its output [`Schema`]; expressions are
//! positional over the concatenation of the child schemas.

use perm_types::{Column, DataType, PermError, Result, Schema};

use crate::expr::{AggCall, ScalarExpr};

/// Sort key of a [`LogicalPlan::Sort`].
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: ScalarExpr,
    pub desc: bool,
}

/// Join types. `Semi`/`Anti` are produced by sublink unnesting and keep only
/// the left schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    Left,
    Full,
    Cross,
    /// Left tuples with at least one match; left schema only.
    Semi,
    /// Left tuples with no match; left schema only.
    Anti,
}

impl JoinType {
    pub fn name(self) -> &'static str {
        match self {
            JoinType::Inner => "Inner",
            JoinType::Left => "Left",
            JoinType::Full => "Full",
            JoinType::Cross => "Cross",
            JoinType::Semi => "Semi",
            JoinType::Anti => "Anti",
        }
    }

    /// True if the join output concatenates both sides' columns.
    pub fn produces_both_sides(self) -> bool {
        !matches!(self, JoinType::Semi | JoinType::Anti)
    }
}

/// Set-operation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpType {
    Union,
    Intersect,
    Except,
}

impl SetOpType {
    pub fn name(self) -> &'static str {
        match self {
            SetOpType::Union => "Union",
            SetOpType::Intersect => "Intersect",
            SetOpType::Except => "Except",
        }
    }
}

/// What a [`LogicalPlan::Boundary`] node means to the provenance rewriter.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundaryKind {
    /// SQL-PLE `BASERELATION` (paper §2.4): the rewrite stops here; the
    /// node's output tuples are treated like base tuples, i.e. duplicated
    /// into provenance attributes named after `name`.
    BaseRelation,
    /// SQL-PLE `PROVENANCE (attrs)` (paper §2.4): the listed positions of
    /// the input are *externally produced* provenance attributes, to be
    /// propagated untouched by the rewrite rules.
    External { attrs: Vec<usize> },
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base table.
    Scan {
        table: String,
        schema: Schema,
        /// Provenance columns recorded in the catalog (eager provenance):
        /// treated as external provenance by the rewriter.
        provenance_cols: Vec<usize>,
    },
    /// Literal rows (`VALUES`, or a SELECT without FROM, which produces a
    /// single row).
    Values {
        rows: Vec<Vec<ScalarExpr>>,
        schema: Schema,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<ScalarExpr>,
        schema: Schema,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: ScalarExpr,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinType,
        /// `None` only for Cross joins.
        condition: Option<ScalarExpr>,
        schema: Schema,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<ScalarExpr>,
        aggs: Vec<AggCall>,
        /// Group columns first, then one column per aggregate.
        schema: Schema,
    },
    /// Duplicate elimination over all columns.
    Distinct { input: Box<LogicalPlan> },
    SetOp {
        op: SetOpType,
        all: bool,
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        schema: Schema,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        limit: Option<u64>,
        offset: u64,
    },
    /// A provenance-rewrite boundary (see [`BoundaryKind`]). Transparent to
    /// planning and execution.
    Boundary {
        input: Box<LogicalPlan>,
        /// The name provenance attributes derive from (relation alias for
        /// `BASERELATION`, FROM-item name for `External`).
        name: String,
        kind: BoundaryKind,
    },
}

impl LogicalPlan {
    /// The operator's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::SetOp { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Boundary { input, .. } => input.schema(),
        }
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.schema().len()
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Boundary { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Short operator name for trees and EXPLAIN output.
    pub fn node_name(&self) -> String {
        match self {
            LogicalPlan::Scan { table, .. } => format!("Scan({table})"),
            LogicalPlan::Values { rows, .. } => format!("Values({} rows)", rows.len()),
            LogicalPlan::Project { .. } => "Project".into(),
            LogicalPlan::Filter { .. } => "Filter".into(),
            LogicalPlan::Join { kind, .. } => format!("{}Join", kind.name()),
            LogicalPlan::Aggregate { .. } => "Aggregate".into(),
            LogicalPlan::Distinct { .. } => "Distinct".into(),
            LogicalPlan::SetOp { op, all, .. } => {
                format!("{}{}", op.name(), if *all { "All" } else { "" })
            }
            LogicalPlan::Sort { .. } => "Sort".into(),
            LogicalPlan::Limit { .. } => "Limit".into(),
            LogicalPlan::Boundary { kind, name, .. } => match kind {
                BoundaryKind::BaseRelation => format!("BaseRelation({name})"),
                BoundaryKind::External { .. } => format!("ExternalProvenance({name})"),
            },
        }
    }

    /// Count of plan nodes (diagnostics and tests).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .into_iter()
            .map(LogicalPlan::node_count)
            .sum::<usize>()
    }

    /// Visit every expression at this node (not descending into children or
    /// sublink subplans) calling `f` on outer-column references with
    /// `levels_up == depth`, adjusting for nesting as it recurses into
    /// sublink plans.
    ///
    /// Used to find which columns of an enclosing scope a subplan's
    /// correlated expressions reference.
    pub fn for_each_outer_column(&self, depth: usize, f: &mut impl FnMut(usize)) {
        let mut visit_expr = |e: &ScalarExpr| {
            e.visit(&mut |n| {
                if let ScalarExpr::OuterColumn { levels_up, index } = n {
                    if *levels_up == depth {
                        f(*index);
                    }
                }
            });
            // Descend into sublink plans with increased depth.
            e.visit(&mut |n| {
                if let ScalarExpr::Subquery(sq) = n {
                    sq.plan.for_each_outer_column(depth + 1, f);
                }
            });
        };
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Values { rows, .. } => {
                for row in rows {
                    for e in row {
                        visit_expr(e);
                    }
                }
            }
            LogicalPlan::Project { exprs, .. } => {
                for e in exprs {
                    visit_expr(e);
                }
            }
            LogicalPlan::Filter { predicate, .. } => visit_expr(predicate),
            LogicalPlan::Join { condition, .. } => {
                if let Some(c) = condition {
                    visit_expr(c);
                }
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                for e in group_by {
                    visit_expr(e);
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        visit_expr(arg);
                    }
                }
            }
            LogicalPlan::Sort { keys, .. } => {
                for k in keys {
                    visit_expr(&k.expr);
                }
            }
            LogicalPlan::Distinct { .. }
            | LogicalPlan::SetOp { .. }
            | LogicalPlan::Limit { .. }
            | LogicalPlan::Boundary { .. } => {}
        }
        for child in self.children() {
            child.for_each_outer_column(depth, f);
        }
    }

    /// True if any expression in the plan (including sublink plans)
    /// references an outer scope at `depth` or beyond — i.e. the plan is
    /// correlated with its environment.
    pub fn is_correlated(&self) -> bool {
        let mut found = false;
        self.for_each_outer_column(1, &mut |_| found = true);
        // for_each_outer_column(1) only reports exactly depth 1; deeper
        // references (levels_up > 1 at top level) also make this correlated.
        if found {
            return true;
        }
        let mut deep = false;
        self.visit_all_exprs(&mut |e| {
            e.visit(&mut |n| {
                if matches!(n, ScalarExpr::OuterColumn { .. }) {
                    deep = true;
                }
            });
        });
        deep
    }

    /// Visit every expression of every node in the plan, including inside
    /// sublink subplans.
    pub fn visit_all_exprs(&self, f: &mut impl FnMut(&ScalarExpr)) {
        let mut handle = |e: &ScalarExpr| {
            f(e);
            e.visit(&mut |n| {
                if let ScalarExpr::Subquery(sq) = n {
                    sq.plan.visit_all_exprs(f);
                }
            });
        };
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Values { rows, .. } => {
                for row in rows {
                    for e in row {
                        handle(e);
                    }
                }
            }
            LogicalPlan::Project { exprs, .. } => {
                for e in exprs {
                    handle(e);
                }
            }
            LogicalPlan::Filter { predicate, .. } => handle(predicate),
            LogicalPlan::Join { condition, .. } => {
                if let Some(c) = condition {
                    handle(c);
                }
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                for e in group_by {
                    handle(e);
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        handle(arg);
                    }
                }
            }
            LogicalPlan::Sort { keys, .. } => {
                for k in keys {
                    handle(&k.expr);
                }
            }
            LogicalPlan::Distinct { .. }
            | LogicalPlan::SetOp { .. }
            | LogicalPlan::Limit { .. }
            | LogicalPlan::Boundary { .. } => {}
        }
        for child in self.children() {
            child.visit_all_exprs(f);
        }
    }

    // ------------------------------------------------------------------
    // Builders (used by the binder, the rewriter and tests)
    // ------------------------------------------------------------------

    /// Identity-preserving projection onto `positions` of `input`.
    pub fn project_positions(input: LogicalPlan, positions: &[usize]) -> LogicalPlan {
        let in_schema = input.schema().clone();
        let exprs: Vec<ScalarExpr> = positions.iter().map(|&i| ScalarExpr::Column(i)).collect();
        let schema = Schema::new(
            positions
                .iter()
                .map(|&i| in_schema.column(i).clone())
                .collect(),
        );
        LogicalPlan::Project {
            input: Box::new(input),
            exprs,
            schema,
        }
    }

    /// A projection from explicit expressions and output columns.
    pub fn project(
        input: LogicalPlan,
        exprs: Vec<ScalarExpr>,
        columns: Vec<Column>,
    ) -> LogicalPlan {
        debug_assert_eq!(exprs.len(), columns.len());
        LogicalPlan::Project {
            input: Box::new(input),
            exprs,
            schema: Schema::new(columns),
        }
    }

    /// A filter node.
    pub fn filter(input: LogicalPlan, predicate: ScalarExpr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(input),
            predicate,
        }
    }

    /// Build a join node, deriving the output schema from the inputs
    /// (outer-join sides become nullable).
    pub fn join(
        left: LogicalPlan,
        right: LogicalPlan,
        kind: JoinType,
        condition: Option<ScalarExpr>,
    ) -> Result<LogicalPlan> {
        if condition.is_none() && !matches!(kind, JoinType::Cross) {
            return Err(PermError::Analysis(format!(
                "{} join requires a condition",
                kind.name()
            )));
        }
        let schema = match kind {
            JoinType::Semi | JoinType::Anti => left.schema().clone(),
            JoinType::Inner | JoinType::Cross => left.schema().join(right.schema()),
            JoinType::Left => left.schema().join(&right.schema().nullable()),
            JoinType::Full => left.schema().nullable().join(&right.schema().nullable()),
        };
        Ok(LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            condition,
            schema,
        })
    }

    /// A single-row, zero-column Values node (`SELECT` without `FROM` scans
    /// exactly one empty tuple).
    pub fn empty_row() -> LogicalPlan {
        LogicalPlan::Values {
            rows: vec![vec![]],
            schema: Schema::empty(),
        }
    }
}

/// Derive the output column for an expression (used by binder and rewriter
/// when synthesizing projections).
pub fn synthesized_column(name: impl Into<String>, ty: DataType) -> Column {
    Column::new(name, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::Value;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.to_string(),
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Column::new(*n, *t).with_qualifier(name))
                    .collect(),
            ),
            provenance_cols: vec![],
        }
    }

    #[test]
    fn join_schema_concatenates_and_nullifies() {
        let l = scan("l", &[("a", DataType::Int)]);
        let r = scan("r", &[("b", DataType::Int)]);
        let j = LogicalPlan::join(
            l.clone(),
            r.clone(),
            JoinType::Left,
            Some(ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1))),
        )
        .unwrap();
        assert_eq!(j.arity(), 2);
        assert!(j.schema().column(1).nullable);

        let semi = LogicalPlan::join(
            l,
            r,
            JoinType::Semi,
            Some(ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(1))),
        )
        .unwrap();
        assert_eq!(semi.arity(), 1);
    }

    #[test]
    fn non_cross_join_requires_condition() {
        let l = scan("l", &[("a", DataType::Int)]);
        let r = scan("r", &[("b", DataType::Int)]);
        assert!(LogicalPlan::join(l, r, JoinType::Inner, None).is_err());
    }

    #[test]
    fn schema_passes_through_filter_sort_limit() {
        let s = scan("t", &[("a", DataType::Int), ("b", DataType::Text)]);
        let f = LogicalPlan::filter(s, ScalarExpr::Literal(Value::Bool(true)));
        assert_eq!(f.arity(), 2);
        let l = LogicalPlan::Limit {
            input: Box::new(f),
            limit: Some(1),
            offset: 0,
        };
        assert_eq!(l.arity(), 2);
        assert_eq!(l.node_count(), 3);
    }

    #[test]
    fn project_positions_subsets_schema() {
        let s = scan("t", &[("a", DataType::Int), ("b", DataType::Text)]);
        let p = LogicalPlan::project_positions(s, &[1]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.schema().column(0).name, "b");
    }

    #[test]
    fn node_names() {
        let s = scan("t", &[("a", DataType::Int)]);
        assert_eq!(s.node_name(), "Scan(t)");
        let b = LogicalPlan::Boundary {
            input: Box::new(s),
            name: "v1".into(),
            kind: BoundaryKind::BaseRelation,
        };
        assert_eq!(b.node_name(), "BaseRelation(v1)");
    }

    #[test]
    fn correlation_detection() {
        let sub = LogicalPlan::filter(
            scan("s", &[("x", DataType::Int)]),
            ScalarExpr::eq(
                ScalarExpr::Column(0),
                ScalarExpr::OuterColumn {
                    levels_up: 1,
                    index: 2,
                },
            ),
        );
        assert!(sub.is_correlated());
        let plain = LogicalPlan::filter(
            scan("s", &[("x", DataType::Int)]),
            ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(1))),
        );
        assert!(!plain.is_correlated());
    }

    #[test]
    fn outer_column_visitor_reports_referenced_positions() {
        let sub = LogicalPlan::filter(
            scan("s", &[("x", DataType::Int)]),
            ScalarExpr::eq(
                ScalarExpr::Column(0),
                ScalarExpr::OuterColumn {
                    levels_up: 1,
                    index: 7,
                },
            ),
        );
        let mut seen = vec![];
        sub.for_each_outer_column(1, &mut |i| seen.push(i));
        assert_eq!(seen, vec![7]);
    }
}
