//! Synthetic workload generators for the overhead and strategy studies.
//!
//! The demo paper reports no numbers (demo papers don't); the companion
//! ICDE'09 paper evaluates provenance-computation overhead per query class
//! on TPC-H. We reproduce the *shape* of that study on two synthetic
//! schemas the repository can generate at any scale:
//!
//! * a **forum** shaped like Figure 1 (messages / users / imports /
//!   approved), scaled up;
//! * a **star schema** (sales facts with product/region dimensions), the
//!   warehouse setting the paper's intro cites.
//!
//! Generators are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use perm_core::PermDb;
use perm_types::{Tuple, Value};

/// Query classes of the overhead study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Select-project-join.
    Spj,
    /// Join + GROUP BY aggregation (join-back rewrite).
    Aggregation,
    /// Set operation (padded-union rewrite).
    SetOperation,
    /// Uncorrelated IN sublink (unnesting rewrite).
    Nested,
}

impl QueryClass {
    pub const ALL: [QueryClass; 4] = [
        QueryClass::Spj,
        QueryClass::Aggregation,
        QueryClass::SetOperation,
        QueryClass::Nested,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Spj => "SPJ",
            QueryClass::Aggregation => "AGG",
            QueryClass::SetOperation => "SETOP",
            QueryClass::Nested => "NESTED",
        }
    }

    /// The original (provenance-free) query of this class over the forum
    /// schema.
    pub fn original_sql(self) -> &'static str {
        match self {
            QueryClass::Spj => {
                "SELECT m.text, u.name FROM messages m JOIN users u ON m.uid = u.uid \
                 WHERE m.mid % 4 = 0"
            }
            QueryClass::Aggregation => {
                "SELECT a.mid, count(*) FROM messages m JOIN approved a ON m.mid = a.mid \
                 GROUP BY a.mid"
            }
            QueryClass::SetOperation => {
                "SELECT mid, text FROM messages UNION SELECT mid, text FROM imports"
            }
            QueryClass::Nested => {
                "SELECT text FROM messages WHERE mid IN (SELECT mid FROM approved)"
            }
        }
    }

    /// The same query under `SELECT PROVENANCE`.
    pub fn provenance_sql(self) -> String {
        match self {
            // Set operations carry the clause on the leftmost branch.
            QueryClass::SetOperation => "SELECT PROVENANCE mid, text FROM messages \
                 UNION SELECT mid, text FROM imports"
                .to_string(),
            other => format!(
                "SELECT PROVENANCE {}",
                other.original_sql().trim_start_matches("SELECT ")
            ),
        }
    }
}

/// Build a forum database with `scale` messages (plus proportionally sized
/// companion tables).
pub fn forum(scale: usize, seed: u64) -> PermDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = PermDb::new();
    db.run_script(
        "CREATE TABLE messages (mId int NOT NULL, text text, uId int);
         CREATE TABLE users (uId int NOT NULL, name text);
         CREATE TABLE imports (mId int NOT NULL, text text, origin text);
         CREATE TABLE approved (uId int NOT NULL, mId int NOT NULL);",
    )
    .expect("schema script is valid");

    let n_users = (scale / 10).max(3);
    let n_imports = scale / 2;
    let n_approved = scale * 2;
    let origins = ["superForum", "HiBoard", "spamHub", "oldSite"];

    {
        let mut cat = db.catalog_mut();
        let users = cat.table_mut("users").expect("users exists");
        for u in 0..n_users {
            users.push_raw(Tuple::new(vec![
                Value::Int(u as i64),
                Value::text(format!("user{u}")),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let messages = cat.table_mut("messages").expect("messages exists");
        for m in 0..scale {
            let uid = rng.random_range(0..n_users) as i64;
            messages.push_raw(Tuple::new(vec![
                Value::Int(m as i64),
                Value::text(format!("message body {m}")),
                Value::Int(uid),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let imports = cat.table_mut("imports").expect("imports exists");
        for m in 0..n_imports {
            let origin = origins[rng.random_range(0..origins.len())];
            imports.push_raw(Tuple::new(vec![
                Value::Int((scale + m) as i64),
                Value::text(format!("imported body {m}")),
                Value::text(origin),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let approved = cat.table_mut("approved").expect("approved exists");
        for _ in 0..n_approved {
            let uid = rng.random_range(0..n_users) as i64;
            let mid = rng.random_range(0..scale.max(1)) as i64;
            approved.push_raw(Tuple::new(vec![Value::Int(uid), Value::Int(mid)]));
        }
    }
    db.execute(
        "CREATE VIEW v1 AS SELECT mId, text FROM messages \
         UNION SELECT mId, text FROM imports",
    )
    .expect("v1 is valid");
    db
}

/// Build a star-schema database with `scale` fact rows.
pub fn star(scale: usize, seed: u64) -> PermDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = PermDb::new();
    db.run_script(
        "CREATE TABLE sales (sid int NOT NULL, pid int, rid int, amount int);
         CREATE TABLE products (pid int NOT NULL, name text, category text);
         CREATE TABLE regions (rid int NOT NULL, name text);",
    )
    .expect("schema script is valid");

    let n_products = (scale / 20).max(2);
    let n_regions = 8usize;
    {
        let mut cat = db.catalog_mut();
        let products = cat.table_mut("products").expect("products");
        for p in 0..n_products {
            products.push_raw(Tuple::new(vec![
                Value::Int(p as i64),
                Value::text(format!("product{p}")),
                Value::text(format!("cat{}", p % 5)),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let regions = cat.table_mut("regions").expect("regions");
        for r in 0..n_regions {
            regions.push_raw(Tuple::new(vec![
                Value::Int(r as i64),
                Value::text(format!("region{r}")),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let sales = cat.table_mut("sales").expect("sales");
        for s in 0..scale {
            sales.push_raw(Tuple::new(vec![
                Value::Int(s as i64),
                Value::Int(rng.random_range(0..n_products) as i64),
                Value::Int(rng.random_range(0..n_regions) as i64),
                Value::Int(rng.random_range(1..1000)),
            ]));
        }
    }
    db
}

/// The star-schema report query (used by the lazy-vs-eager study).
pub const STAR_REPORT: &str = "SELECT p.category, r.name, sum(s.amount) \
     FROM sales s JOIN products p ON s.pid = p.pid \
                  JOIN regions r ON s.rid = r.rid \
     GROUP BY p.category, r.name";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forum_generator_is_deterministic() {
        let mut a = forum(100, 7);
        let mut b = forum(100, 7);
        let ra = a.query("SELECT count(*), sum(uid) FROM messages").unwrap();
        let rb = b.query("SELECT count(*), sum(uid) FROM messages").unwrap();
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn forum_tables_have_expected_sizes() {
        let mut db = forum(200, 1);
        assert_eq!(
            db.query("SELECT count(*) FROM messages").unwrap().row(0),
            &[Value::Int(200)]
        );
        assert_eq!(
            db.query("SELECT count(*) FROM imports").unwrap().row(0),
            &[Value::Int(100)]
        );
        assert_eq!(
            db.query("SELECT count(*) FROM approved").unwrap().row(0),
            &[Value::Int(400)]
        );
    }

    #[test]
    fn every_query_class_runs_with_and_without_provenance() {
        let mut db = forum(60, 3);
        for class in QueryClass::ALL {
            let orig = db
                .query(class.original_sql())
                .unwrap_or_else(|e| panic!("{} original failed: {e}", class.name()));
            let prov = db
                .query(&class.provenance_sql())
                .unwrap_or_else(|e| panic!("{} provenance failed: {e}", class.name()));
            assert!(
                prov.columns.len() > orig.columns.len(),
                "{}: provenance adds attributes",
                class.name()
            );
        }
    }

    #[test]
    fn star_report_runs() {
        let mut db = star(500, 11);
        let r = db.query(STAR_REPORT).unwrap();
        assert!(!r.is_empty());
        let p = db
            .query(&format!(
                "SELECT PROVENANCE {}",
                STAR_REPORT.trim_start_matches("SELECT ")
            ))
            .unwrap();
        assert_eq!(p.row_count(), 500, "one witness per fact row");
    }
}
