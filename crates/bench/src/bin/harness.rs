//! The reproduction harness: regenerates every figure of the paper plus
//! the overhead/strategy studies.
//!
//! ```text
//! cargo run -p perm-bench --bin harness            # everything
//! cargo run -p perm-bench --bin harness -- fig2    # one experiment
//! ```
//!
//! Experiments: `fig1 fig2 fig3 fig4 sec24 overhead strategy lazy tpch`.

use perm_bench::{forum, overhead_factor, time_query, tpch, QueryClass, TpchQuery, STAR_REPORT};
use perm_core::fixtures::{
    add_figure4_tables, forum_db, Q1, Q3, SEC24_BASERELATION, SEC24_PROVENANCE_AGG,
    SEC24_QUERY_PROVENANCE,
};
use perm_core::{
    materialize_provenance, BrowserPanels, SessionOptions, StageTrace, StrategyMode, UnionStrategy,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("sec24") {
        sec24();
    }
    if want("overhead") {
        overhead();
    }
    if want("strategy") {
        strategy();
    }
    if want("lazy") {
        lazy_vs_eager();
    }
    if want("tpch") {
        tpch_overhead();
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Figure 1: the example database and the results of q1/q3.
fn fig1() {
    banner("Figure 1 — example database and queries");
    let mut db = forum_db();
    for table in ["messages", "users", "imports", "approved"] {
        println!("{table}:");
        println!(
            "{}",
            db.query(&format!("SELECT * FROM {table} ORDER BY 1"))
                .expect("fixture table")
                .to_table()
        );
    }
    println!("q1: {Q1}\n{}", db.query(Q1).expect("q1").to_table());
    println!("q3: {Q3}\n{}", db.query(Q3).expect("q3").to_table());
}

/// Figure 2: the provenance of q1, exactly as printed in the paper.
fn fig2() {
    banner("Figure 2 — query q1 provenance");
    let mut db = forum_db();
    let r = db
        .query(&format!("SELECT PROVENANCE * FROM ({Q1}) q1 ORDER BY mid"))
        .expect("q1 provenance");
    println!("{}", r.to_table());
}

/// Figure 3: the pipeline stages of a provenance query.
fn fig3() {
    banner("Figure 3 — Perm architecture (stage trace)");
    let mut db = forum_db();
    let trace = StageTrace::run(&mut db, SEC24_PROVENANCE_AGG).expect("trace");
    println!("{}", trace.render());
}

/// Figure 4: the five browser panels, with the marker-5 sample.
fn fig4() {
    banner("Figure 4 — Perm browser panels");
    let mut db = forum_db();
    add_figure4_tables(&mut db);
    let p = BrowserPanels::capture(&mut db, "SELECT PROVENANCE s.i FROM s JOIN r ON s.i = r.i")
        .expect("panels");
    println!("{}", p.render());
}

/// The three SQL-PLE listings of §2.4.
fn sec24() {
    banner("Section 2.4 — SQL-PLE listings");
    let mut db = forum_db();
    for (name, sql) in [
        (
            "ON CONTRIBUTION (INFLUENCE) aggregation",
            SEC24_PROVENANCE_AGG,
        ),
        ("querying provenance with plain SQL", SEC24_QUERY_PROVENANCE),
        ("BASERELATION", SEC24_BASERELATION),
    ] {
        println!("-- {name}\n{sql}\n");
        println!("{}", db.query(sql).expect("listing is valid").to_table());
    }
}

/// The overhead study: provenance vs original per query class and scale
/// (shape of the companion ICDE'09 evaluation).
fn overhead() {
    banner("Overhead study — q+ vs q per query class (median of 5 runs)");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>9}",
        "class", "scale", "orig", "provenance", "factor"
    );
    for scale in [100usize, 1_000, 10_000] {
        let mut db = forum(scale, 42);
        for class in QueryClass::ALL {
            let (orig, prov, factor) = overhead_factor(&mut db, class, 5);
            println!(
                "{:<8} {:>8} {:>12.2?} {:>12.2?} {:>8.2}x",
                class.name(),
                scale,
                orig,
                prov,
                factor
            );
        }
    }
    println!(
        "\nexpected shape: SPJ/SETOP/NESTED a small constant factor; AGG the\n\
         largest factor (the rewrite adds a join-back against the rewritten\n\
         input on top of recomputing the aggregate)."
    );
}

/// The strategy study: union rewrite strategies and the chooser.
fn strategy() {
    banner("Strategy study — union rewrite (median of 5 runs)");
    let sql = QueryClass::SetOperation.provenance_sql();
    println!("{:<12} {:>8} {:>14}", "strategy", "scale", "time");
    for scale in [1_000usize, 10_000] {
        for (name, mode) in [
            ("padded", StrategyMode::Fixed(UnionStrategy::PaddedUnion)),
            ("join-back", StrategyMode::Fixed(UnionStrategy::JoinBack)),
            ("heuristic", StrategyMode::Heuristic),
            ("cost-based", StrategyMode::CostBased),
        ] {
            let mut db = forum(scale, 42);
            db.set_options(SessionOptions::default().with_union_strategy(mode));
            let t = time_query(&mut db, &sql, 5);
            println!("{name:<12} {scale:>8} {t:>12.2?}");
        }
    }
    println!(
        "\nexpected shape: padded-union beats join-back (which recomputes the\n\
         original union besides); heuristic and cost-based match the winner."
    );
}

/// TPC-H-shaped overhead (the companion ICDE'09 evaluation's substrate).
fn tpch_overhead() {
    banner("TPC-H-lite overhead — q+ vs q (median of 5 runs)");
    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>9}",
        "query", "scale", "orig", "provenance", "factor"
    );
    for scale in [1_000usize, 10_000] {
        let mut db = tpch(scale, 42);
        for q in TpchQuery::ALL {
            let orig = time_query(&mut db, q.original_sql(), 5);
            let prov_sql = q.provenance_sql();
            let prov = time_query(&mut db, &prov_sql, 5);
            let factor = prov.as_secs_f64() / orig.as_secs_f64().max(1e-9);
            println!(
                "{:<24} {:>8} {:>12.2?} {:>12.2?} {:>8.2}x",
                q.name(),
                scale,
                orig,
                prov,
                factor
            );
        }
    }
}

/// Lazy vs eager provenance.
fn lazy_vs_eager() {
    banner("Lazy vs eager provenance (median of 5 runs)");
    let prov_sql = format!(
        "SELECT PROVENANCE {}",
        STAR_REPORT.trim_start_matches("SELECT ")
    );
    println!("{:<8} {:>10} {:>14} {:>14}", "scale", "", "lazy", "eager");
    for scale in [1_000usize, 10_000] {
        let mut db = perm_bench::star(scale, 42);
        let lazy = time_query(&mut db, &prov_sql, 5);
        materialize_provenance(&mut db, "stored_report", &prov_sql).expect("materialize");
        let eager = time_query(&mut db, "SELECT * FROM stored_report", 5);
        println!("{scale:<8} {:>10} {lazy:>12.2?} {eager:>12.2?}", "");
    }
    println!(
        "\nexpected shape: eager reads the stored relation and is much faster\n\
         per retrieval; lazy pays the recomputation but always sees fresh data."
    );
}
