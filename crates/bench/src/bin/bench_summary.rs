//! Machine-readable benchmark summary emitter.
//!
//! Runs the hot-path workload (the same queries as the
//! `scan_project_filter` and `provenance_join` Criterion benches) in a
//! quick mode and emits results for trajectory tracking:
//!
//! ```text
//! # capture a raw baseline (run at the *old* revision)
//! cargo run --release -p perm-bench --bin bench_summary -- --raw baseline.txt
//! # after the change: merge the baseline and write the JSON summary
//! cargo run --release -p perm-bench --bin bench_summary -- \
//!     --baseline baseline.txt --out BENCH_3.json
//! ```
//!
//! The raw format is one `group/name=milliseconds` line per query; the
//! JSON summary records before/after medians and the speedup factor.

use std::collections::BTreeMap;
use std::time::Instant;

use perm_bench::hotpath;

/// Median wall-clock milliseconds of `runs` prepared executions (two
/// warm-up runs are discarded).
fn measure(prepared: &perm_core::Prepared, runs: usize) -> f64 {
    for _ in 0..2 {
        prepared.execute().expect("warm-up run succeeds");
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(prepared.execute().expect("measured run succeeds"));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn run_workload(runs: usize) -> Vec<(String, f64)> {
    let db = hotpath::hotpath_db();
    let session = db.server().session();
    hotpath::all_queries()
        .into_iter()
        .map(|(group, name, sql)| {
            let prepared = session
                .prepare(&sql)
                .unwrap_or_else(|e| panic!("{group}/{name} fails to prepare: {e}"));
            let ms = measure(&prepared, runs);
            eprintln!("{group}/{name}: {ms:.3} ms");
            (format!("{group}/{name}"), ms)
        })
        .collect()
}

/// The DOP-scaling workload: each query at DOP 1, 2 and 4 over the
/// larger [`hotpath::PARALLEL_SCALE`] forum. Returns
/// `(name, [ms at dop 1, 2, 4])` per query.
fn run_parallel_workload(runs: usize) -> Vec<(String, [f64; 3])> {
    let db = hotpath::parallel_db();
    hotpath::parallel_scaling_queries()
        .into_iter()
        .map(|(name, sql)| {
            let mut ms = [0.0f64; 3];
            for (slot, dop) in [1usize, 2, 4].into_iter().enumerate() {
                let session = hotpath::parallel_session(&db, dop);
                let prepared = session
                    .prepare(&sql)
                    .unwrap_or_else(|e| panic!("parallel_scaling/{name} fails to prepare: {e}"));
                ms[slot] = measure(&prepared, runs);
                eprintln!("parallel_scaling/{name}/dop{dop}: {:.3} ms", ms[slot]);
            }
            (name.to_string(), ms)
        })
        .collect()
}

/// Parse the raw `key=ms` baseline format written by `--raw`.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|line| {
            let (k, v) = line.trim().split_once('=')?;
            Some((k.to_string(), v.parse::<f64>().ok()?))
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut raw_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut out: Option<String> = None;
    let mut runs = 11usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--raw" => raw_out = Some(args.next().expect("--raw takes a path")),
            "--baseline" => baseline = Some(args.next().expect("--baseline takes a path")),
            "--out" => out = Some(args.next().expect("--out takes a path")),
            "--runs" => {
                runs = args
                    .next()
                    .expect("--runs takes a count")
                    .parse()
                    .expect("--runs takes an integer")
            }
            other => panic!("unknown argument {other:?} (see module docs)"),
        }
    }

    let results = run_workload(runs);

    if let Some(path) = raw_out {
        let body: String = results
            .iter()
            .map(|(k, ms)| format!("{k}={ms}\n"))
            .collect();
        std::fs::write(&path, body).expect("raw output file is writable");
        eprintln!("wrote raw numbers to {path}");
        return;
    }

    let before: BTreeMap<String, f64> = match &baseline {
        Some(path) => parse_baseline(
            &std::fs::read_to_string(path).expect("baseline file exists and is readable"),
        ),
        None => BTreeMap::new(),
    };

    // The DOP-scaling workload (not part of the raw baseline format —
    // dop1 is its own serial baseline).
    let parallel = run_parallel_workload(runs.min(7));

    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"issue\": 5,\n  \"workload\": \"forum scale {} seed {}\",\n  \"unit\": \"ms (median of {} prepared executions)\",\n  \"host_parallelism\": {},\n  \"benches\": {{\n",
        hotpath::HOTPATH_SCALE,
        hotpath::HOTPATH_SEED,
        runs,
        perm_exec::auto_parallelism(),
    ));
    for (i, (key, after_ms)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        match before.get(key) {
            Some(before_ms) => body.push_str(&format!(
                "    \"{}\": {{\"before_ms\": {:.4}, \"after_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
                json_escape(key),
                before_ms,
                after_ms,
                before_ms / after_ms.max(1e-9),
                sep
            )),
            None => body.push_str(&format!(
                "    \"{}\": {{\"after_ms\": {:.4}}}{}\n",
                json_escape(key),
                after_ms,
                sep
            )),
        }
    }
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"parallel_scaling\": {{\n    \"workload\": \"forum scale {} seed {}\",\n",
        hotpath::PARALLEL_SCALE,
        hotpath::HOTPATH_SEED,
    ));
    for (i, (name, ms)) in parallel.iter().enumerate() {
        let sep = if i + 1 == parallel.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}\": {{\"dop1_ms\": {:.4}, \"dop2_ms\": {:.4}, \"dop4_ms\": {:.4}, \"speedup_dop2\": {:.2}, \"speedup_dop4\": {:.2}}}{}\n",
            json_escape(name),
            ms[0],
            ms[1],
            ms[2],
            ms[0] / ms[1].max(1e-9),
            ms[0] / ms[2].max(1e-9),
            sep
        ));
    }
    body.push_str("  }\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &body).expect("output file is writable");
            eprintln!("wrote summary to {path}");
        }
        None => print!("{body}"),
    }
}
