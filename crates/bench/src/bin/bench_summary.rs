//! Machine-readable benchmark summary emitter.
//!
//! Runs the hot-path workload (the same queries as the
//! `scan_project_filter` and `provenance_join` Criterion benches) in a
//! quick mode and emits results for trajectory tracking:
//!
//! ```text
//! # capture a raw baseline (run at the *old* revision)
//! cargo run --release -p perm-bench --bin bench_summary -- --raw baseline.txt
//! # after the change: merge the baseline and write the JSON summary
//! cargo run --release -p perm-bench --bin bench_summary -- \
//!     --baseline baseline.txt --out BENCH_3.json
//! ```
//!
//! The raw format is one `group/name=milliseconds` line per query; the
//! JSON summary records before/after medians and the speedup factor.
//!
//! `--memory-budget BYTES` caps the server-wide execution memory pool
//! for the run (0 = unbounded), so the spilling paths can be measured
//! under the same harness. The summary always records the budget and
//! the pool's observed peak (`memory_budget` / `peak_pool_bytes`).

use std::collections::BTreeMap;
use std::time::Instant;

use perm_bench::hotpath;
use perm_core::{DurabilityOptions, FsyncPolicy, PermServer, SessionOptions};

/// Median wall-clock milliseconds of `runs` prepared executions (two
/// warm-up runs are discarded).
fn measure(prepared: &perm_core::Prepared, runs: usize) -> f64 {
    for _ in 0..2 {
        prepared.execute().expect("warm-up run succeeds");
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(prepared.execute().expect("measured run succeeds"));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Run the hot-path workload under `memory_budget` (0 = unbounded).
/// Returns the per-query medians plus the pool's peak usage in bytes.
fn run_workload(runs: usize, memory_budget: usize) -> (Vec<(String, f64)>, usize) {
    let db = hotpath::hotpath_db();
    let server = db.server();
    if memory_budget > 0 {
        server.set_memory_budget(Some(memory_budget));
    }
    let session = server.session();
    let results = hotpath::all_queries()
        .into_iter()
        .map(|(group, name, sql)| {
            let prepared = session
                .prepare(&sql)
                .unwrap_or_else(|e| panic!("{group}/{name} fails to prepare: {e}"));
            let ms = measure(&prepared, runs);
            eprintln!("{group}/{name}: {ms:.3} ms");
            (format!("{group}/{name}"), ms)
        })
        .collect();
    (results, server.memory_pool().peak())
}

/// The columnar A/B workload: every hot-path query once with batch
/// execution (the default) and once with the row interpreter
/// ([`SessionOptions::with_columnar`] off), on the same server. The
/// row path is the reference semantics, so this section is the
/// measured answer to "what does the batch layer buy per bench".
fn run_columnar_workload(runs: usize) -> Vec<(String, [f64; 2])> {
    let db = hotpath::hotpath_db();
    let server = db.server();
    let batch_session = server.session();
    let row_session = server.session_with_options(SessionOptions::default().with_columnar(false));
    hotpath::all_queries()
        .into_iter()
        .map(|(group, name, sql)| {
            let mut ms = [0.0f64; 2];
            for (slot, session) in [&row_session, &batch_session].into_iter().enumerate() {
                let prepared = session
                    .prepare(&sql)
                    .unwrap_or_else(|e| panic!("columnar/{group}/{name} fails to prepare: {e}"));
                ms[slot] = measure(&prepared, runs);
            }
            eprintln!(
                "columnar/{group}/{name}: row {:.3} ms, batch {:.3} ms",
                ms[0], ms[1]
            );
            (format!("{group}/{name}"), ms)
        })
        .collect()
}

/// The DOP-scaling workload: each query at DOP 1, 2 and 4 over the
/// larger [`hotpath::PARALLEL_SCALE`] forum. Returns
/// `(name, [ms at dop 1, 2, 4])` per query.
fn run_parallel_workload(runs: usize, memory_budget: usize) -> Vec<(String, [f64; 3])> {
    let db = hotpath::parallel_db();
    if memory_budget > 0 {
        db.server().set_memory_budget(Some(memory_budget));
    }
    hotpath::parallel_scaling_queries()
        .into_iter()
        .map(|(name, sql)| {
            let mut ms = [0.0f64; 3];
            for (slot, dop) in [1usize, 2, 4].into_iter().enumerate() {
                let session = hotpath::parallel_session(&db, dop);
                let prepared = session
                    .prepare(&sql)
                    .unwrap_or_else(|e| panic!("parallel_scaling/{name} fails to prepare: {e}"));
                ms[slot] = measure(&prepared, runs);
                eprintln!("parallel_scaling/{name}/dop{dop}: {:.3} ms", ms[slot]);
            }
            (name.to_string(), ms)
        })
        .collect()
}

/// How many cancellation-latency samples the lifecycle workload takes.
const CANCEL_SAMPLES: usize = 30;

/// The query-lifecycle workload (PR 10): how fast a cancel lands.
///
/// A wide streaming provenance join over the [`hotpath::PARALLEL_SCALE`]
/// forum is started as a stream at DOP 2; after the first row arrives a
/// [`perm_core::CancelHandle`] fires and the clock runs until the typed
/// `cancelled` error surfaces — the end-to-end cancellation latency
/// through the cooperative checks (morsel claims, batch boundaries, the
/// stream's pull loop). Returns `[p50_ms, p95_ms]` over
/// [`CANCEL_SAMPLES`] runs.
///
/// The *cost* side of the lifecycle machinery needs no run of its own:
/// the per-batch/per-row token checks are always on, so their overhead
/// is visible as the delta of `scan_project_filter/filter_arith` and
/// `provenance_join/prov_agg_joinback` in `benches` against the
/// previous issue's summary (`BENCH_9.json`).
fn run_lifecycle_workload() -> [f64; 2] {
    let db = hotpath::parallel_db();
    let session = hotpath::parallel_session(&db, 2);
    let sql = hotpath::parallel_scaling_queries()
        .into_iter()
        .find(|(name, _)| *name == "prov_3join_wide")
        .map(|(_, sql)| sql)
        .expect("the scaling workload includes prov_3join_wide");
    let mut lat: Vec<f64> = (0..CANCEL_SAMPLES)
        .map(|_| {
            let mut stream = session.query_stream(&sql).expect("lifecycle query streams");
            let first = stream
                .next()
                .expect("the join yields rows")
                .expect("first row is not an error");
            std::hint::black_box(first);
            let handle = stream.cancel_handle();
            let start = Instant::now();
            handle.cancel();
            loop {
                match stream.next() {
                    Some(Ok(_)) => continue,
                    Some(Err(e)) => {
                        assert_eq!(e.kind(), "cancelled", "{e}");
                        break;
                    }
                    None => panic!("stream ended without surfacing the cancellation"),
                }
            }
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let p50 = lat[lat.len() / 2];
    let p95 = lat[(lat.len() * 95 / 100).min(lat.len() - 1)];
    eprintln!("lifecycle/cancel_latency: p50 {p50:.3} ms, p95 {p95:.3} ms");
    [p50, p95]
}

/// How many statements each durability micro-bench covers.
const WAL_APPEND_BATCH: usize = 100;
const RECOVERY_REPLAY_STATEMENTS: usize = 200;

/// The durability micro-benches (PR 8): `wal_append` measures the
/// logical-WAL commit path (append + frame + rollback bookkeeping,
/// fsync off so the framing cost is visible, not the disk), and
/// `recovery_replay` measures a cold `PermServer::open` replaying a
/// WAL tail through the full parse → plan → execute pipeline.
fn run_durability_workload(runs: usize) -> Vec<(String, f64)> {
    let dir = std::env::temp_dir().join(format!("perm-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurabilityOptions::default()
        .with_fsync(FsyncPolicy::Never)
        .with_checkpoint_every(0);

    // wal_append: one batch of single-row INSERT commits per sample.
    let server = PermServer::open_with(&dir, opts.clone()).expect("durability bench dir opens");
    let session = server.session();
    session
        .execute("CREATE TABLE bench_wal (id int, payload text)")
        .expect("bench table creates");
    let mut append_samples: Vec<f64> = Vec::new();
    for run in 0..runs + 2 {
        let start = Instant::now();
        for i in 0..WAL_APPEND_BATCH {
            session
                .execute(&format!(
                    "INSERT INTO bench_wal VALUES ({i}, 'payload-{i}')"
                ))
                .expect("bench insert commits");
        }
        // Two warm-up batches are discarded.
        if run >= 2 {
            append_samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    append_samples.sort_by(|a, b| a.total_cmp(b));
    let wal_append_ms = append_samples[append_samples.len() / 2];
    eprintln!("durability/wal_append: {wal_append_ms:.3} ms per {WAL_APPEND_BATCH} commits");
    drop(session);
    drop(server);

    // recovery_replay: a fixed WAL tail, re-opened cold per sample.
    let _ = std::fs::remove_dir_all(&dir);
    {
        let server = PermServer::open_with(&dir, opts.clone()).expect("replay bench dir opens");
        let session = server.session();
        session
            .execute("CREATE TABLE bench_replay (id int, payload text)")
            .expect("replay table creates");
        for i in 0..RECOVERY_REPLAY_STATEMENTS - 1 {
            session
                .execute(&format!(
                    "INSERT INTO bench_replay VALUES ({i}, 'payload-{i}')"
                ))
                .expect("replay insert commits");
        }
    }
    let mut replay_samples: Vec<f64> = Vec::new();
    for run in 0..runs + 2 {
        let start = Instant::now();
        let server = PermServer::open_with(&dir, opts.clone()).expect("replay bench re-opens");
        assert!(!server.is_read_only(), "replay bench WAL must be clean");
        if run >= 2 {
            replay_samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    replay_samples.sort_by(|a, b| a.total_cmp(b));
    let replay_ms = replay_samples[replay_samples.len() / 2];
    eprintln!(
        "durability/recovery_replay: {replay_ms:.3} ms per {RECOVERY_REPLAY_STATEMENTS} statements"
    );
    let _ = std::fs::remove_dir_all(&dir);

    vec![
        (
            format!("wal_append/{WAL_APPEND_BATCH}_commits"),
            wal_append_ms,
        ),
        (
            format!("recovery_replay/{RECOVERY_REPLAY_STATEMENTS}_statements"),
            replay_ms,
        ),
    ]
}

/// Parse the raw `key=ms` baseline format written by `--raw`.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|line| {
            let (k, v) = line.trim().split_once('=')?;
            Some((k.to_string(), v.parse::<f64>().ok()?))
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Validate the summary before it is written or printed: a malformed
/// body or a non-positive measurement must fail the run (exit 1), not
/// poison the trajectory data downstream tooling ingests.
///
/// One parameter per summary section keeps the checks independent;
/// bundling them into a struct would only move the argument list.
#[allow(clippy::too_many_arguments)]
fn validate_summary(
    body: &str,
    host_parallelism: usize,
    results: &[(String, f64)],
    before: &BTreeMap<String, f64>,
    parallel: &[(String, [f64; 3])],
    durability: &[(String, f64)],
    columnar: &[(String, [f64; 2])],
    memory_budget: usize,
    peak_pool_bytes: usize,
) -> Result<(), String> {
    for key in [
        "\"issue\"",
        "\"workload\"",
        "\"unit\"",
        "\"host_parallelism\"",
        "\"memory_budget\"",
        "\"peak_pool_bytes\"",
        "\"benches\"",
        "\"parallel_scaling\"",
        "\"durability\"",
        "\"columnar\"",
        "\"lifecycle\"",
    ] {
        if !body.contains(key) {
            return Err(format!("summary is missing required key {key}"));
        }
    }
    if memory_budget > 0 && peak_pool_bytes > memory_budget {
        return Err(format!(
            "pool peak {peak_pool_bytes} exceeds the {memory_budget}-byte budget; \
             the budget is supposed to be a hard ceiling"
        ));
    }
    let opens = body.matches('{').count();
    let closes = body.matches('}').count();
    if opens != closes {
        return Err(format!(
            "unbalanced JSON braces ({opens} open, {closes} close)"
        ));
    }
    if host_parallelism < 1 {
        return Err("host_parallelism must be >= 1".into());
    }
    if results.is_empty() {
        return Err("no benchmark results emitted".into());
    }
    for (key, ms) in results {
        if !ms.is_finite() || *ms <= 0.0 {
            return Err(format!("non-positive timing for {key}: {ms}"));
        }
        if let Some(b) = before.get(key) {
            if !b.is_finite() || *b <= 0.0 {
                return Err(format!("non-positive baseline timing for {key}: {b}"));
            }
        }
    }
    for (name, ms) in parallel {
        if ms.iter().any(|m| !m.is_finite() || *m <= 0.0) {
            return Err(format!("non-positive parallel timing for {name}: {ms:?}"));
        }
    }
    for (name, ms) in durability {
        if !ms.is_finite() || *ms <= 0.0 {
            return Err(format!("non-positive durability timing for {name}: {ms}"));
        }
    }
    for (name, ms) in columnar {
        if ms.iter().any(|m| !m.is_finite() || *m <= 0.0) {
            return Err(format!("non-positive columnar timing for {name}: {ms:?}"));
        }
    }
    check_joinback_regression(results)?;
    Ok(())
}

/// Validate the lifecycle section's cancellation-latency percentiles: a
/// non-positive or non-finite latency means the measurement loop broke,
/// and p95 below p50 means the percentile math did.
fn check_cancel_latency(lat: &[f64; 2]) -> Result<(), String> {
    if lat.iter().any(|ms| !ms.is_finite() || *ms <= 0.0) {
        return Err(format!("non-positive cancellation latency: {lat:?}"));
    }
    if lat[1] < lat[0] {
        return Err(format!(
            "cancellation latency p95 {:.4} below p50 {:.4}",
            lat[1], lat[0]
        ));
    }
    Ok(())
}

/// How many times slower than its sibling provenance benches
/// `prov_agg_joinback` may run before the summary is rejected.
///
/// The joinback query (hash join → grouped aggregate → join-back, the
/// aggregation rewrite of the Perm paper's Figure 10) runs over the same
/// forum data as the other `provenance_join` benches, so the *ratio*
/// between them is host-speed-independent. Per-row overhead that creeps
/// into its longer pipeline shows up here first: the PR 7–8 regression
/// (9.8 ms → 15.9 ms) pushed the ratio to 13.2× while every absolute
/// number still looked plausible on a faster host.
const JOINBACK_RATIO_LIMIT: f64 = 12.0;

/// Regression guard for `provenance_join/prov_agg_joinback`: compare it
/// against the median of the other `provenance_join` benches and reject
/// the summary when the ratio exceeds [`JOINBACK_RATIO_LIMIT`]. Skipped
/// when the workload lacks the bench or has fewer than two siblings to
/// form a meaningful median.
fn check_joinback_regression(results: &[(String, f64)]) -> Result<(), String> {
    const JOINBACK: &str = "provenance_join/prov_agg_joinback";
    let Some(&(_, joinback)) = results.iter().find(|(k, _)| k == JOINBACK) else {
        return Ok(());
    };
    let mut siblings: Vec<f64> = results
        .iter()
        .filter(|(k, _)| k.starts_with("provenance_join/") && k != JOINBACK)
        .map(|&(_, ms)| ms)
        .collect();
    if siblings.len() < 2 {
        return Ok(());
    }
    siblings.sort_by(|a, b| a.total_cmp(b));
    let mid = siblings.len() / 2;
    let median = if siblings.len().is_multiple_of(2) {
        (siblings[mid - 1] + siblings[mid]) / 2.0
    } else {
        siblings[mid]
    };
    let ratio = joinback / median.max(1e-9);
    if ratio > JOINBACK_RATIO_LIMIT {
        return Err(format!(
            "{JOINBACK} at {joinback:.3} ms is {ratio:.1}x the {median:.3} ms median of its              sibling provenance benches (limit {JOINBACK_RATIO_LIMIT}x); per-row overhead has              crept into the joinback pipeline"
        ));
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut raw_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut out: Option<String> = None;
    let mut runs = 11usize;
    let mut memory_budget = 0usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--raw" => raw_out = Some(args.next().expect("--raw takes a path")),
            "--baseline" => baseline = Some(args.next().expect("--baseline takes a path")),
            "--out" => out = Some(args.next().expect("--out takes a path")),
            "--runs" => {
                runs = args
                    .next()
                    .expect("--runs takes a count")
                    .parse()
                    .expect("--runs takes an integer")
            }
            "--memory-budget" => {
                memory_budget = args
                    .next()
                    .expect("--memory-budget takes a byte count")
                    .parse()
                    .expect("--memory-budget takes an integer (0 = unbounded)")
            }
            other => panic!("unknown argument {other:?} (see module docs)"),
        }
    }

    let (results, peak_pool_bytes) = run_workload(runs, memory_budget);

    if let Some(path) = raw_out {
        for (key, ms) in &results {
            if !ms.is_finite() || *ms <= 0.0 {
                eprintln!("bench_summary: non-positive timing for {key}: {ms}");
                std::process::exit(1);
            }
        }
        let body: String = results
            .iter()
            .map(|(k, ms)| format!("{k}={ms}\n"))
            .collect();
        std::fs::write(&path, body).expect("raw output file is writable");
        eprintln!("wrote raw numbers to {path}");
        return;
    }

    let before: BTreeMap<String, f64> = match &baseline {
        Some(path) => parse_baseline(
            &std::fs::read_to_string(path).expect("baseline file exists and is readable"),
        ),
        None => BTreeMap::new(),
    };

    // The DOP-scaling workload (not part of the raw baseline format —
    // dop1 is its own serial baseline).
    let parallel = run_parallel_workload(runs.min(7), memory_budget);

    // The durability micro-benches (not part of the raw baseline
    // format either — they measure the commit and recovery paths, not
    // query execution).
    let durability = run_durability_workload(runs.min(7));

    // The columnar A/B workload (row interpreter vs batch kernels over
    // the same prepared queries — the measured value of issue 9).
    let columnar = run_columnar_workload(runs.min(7));

    // The cancellation-latency workload (the measured value of issue
    // 10; the check *cost* shows up as the benches deltas vs BENCH_9).
    let lifecycle = run_lifecycle_workload();

    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"issue\": 10,\n  \"workload\": \"forum scale {} seed {}\",\n  \"unit\": \"ms (median of {} prepared executions)\",\n  \"host_parallelism\": {},\n  \"memory_budget\": {},\n  \"peak_pool_bytes\": {},\n  \"benches\": {{\n",
        hotpath::HOTPATH_SCALE,
        hotpath::HOTPATH_SEED,
        runs,
        perm_exec::auto_parallelism(),
        memory_budget,
        peak_pool_bytes,
    ));
    for (i, (key, after_ms)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        match before.get(key) {
            Some(before_ms) => body.push_str(&format!(
                "    \"{}\": {{\"before_ms\": {:.4}, \"after_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
                json_escape(key),
                before_ms,
                after_ms,
                before_ms / after_ms.max(1e-9),
                sep
            )),
            None => body.push_str(&format!(
                "    \"{}\": {{\"after_ms\": {:.4}}}{}\n",
                json_escape(key),
                after_ms,
                sep
            )),
        }
    }
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"parallel_scaling\": {{\n    \"workload\": \"forum scale {} seed {}\",\n",
        hotpath::PARALLEL_SCALE,
        hotpath::HOTPATH_SEED,
    ));
    for (i, (name, ms)) in parallel.iter().enumerate() {
        let sep = if i + 1 == parallel.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}\": {{\"dop1_ms\": {:.4}, \"dop2_ms\": {:.4}, \"dop4_ms\": {:.4}, \"speedup_dop2\": {:.2}, \"speedup_dop4\": {:.2}}}{}\n",
            json_escape(name),
            ms[0],
            ms[1],
            ms[2],
            ms[0] / ms[1].max(1e-9),
            ms[0] / ms[2].max(1e-9),
            sep
        ));
    }
    body.push_str("  },\n");
    body.push_str("  \"durability\": {\n");
    for (i, (name, ms)) in durability.iter().enumerate() {
        let sep = if i + 1 == durability.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}\": {{\"after_ms\": {:.4}}}{}\n",
            json_escape(name),
            ms,
            sep
        ));
    }
    body.push_str("  },\n");
    body.push_str("  \"columnar\": {\n");
    for (i, (name, ms)) in columnar.iter().enumerate() {
        let sep = if i + 1 == columnar.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}\": {{\"row_ms\": {:.4}, \"batch_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            json_escape(name),
            ms[0],
            ms[1],
            ms[0] / ms[1].max(1e-9),
            sep
        ));
    }
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"lifecycle\": {{\n    \"cancel_latency\": {{\"query\": \"parallel_scaling/prov_3join_wide\", \"dop\": 2, \"samples\": {CANCEL_SAMPLES}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}}}\n  }}\n}}\n",
        lifecycle[0], lifecycle[1],
    ));

    if let Err(e) = check_cancel_latency(&lifecycle) {
        eprintln!("bench_summary: invalid summary: {e}");
        std::process::exit(1);
    }
    if let Err(e) = validate_summary(
        &body,
        perm_exec::auto_parallelism(),
        &results,
        &before,
        &parallel,
        &durability,
        &columnar,
        memory_budget,
        peak_pool_bytes,
    ) {
        eprintln!("bench_summary: invalid summary: {e}");
        std::process::exit(1);
    }

    match out {
        Some(path) => {
            std::fs::write(&path, &body).expect("output file is writable");
            eprintln!("wrote summary to {path}");
        }
        None => print!("{body}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_body() -> String {
        concat!(
            "{\n  \"issue\": 5,\n  \"workload\": \"w\",\n  \"unit\": \"ms\",\n",
            "  \"host_parallelism\": 4,\n",
            "  \"memory_budget\": 0,\n  \"peak_pool_bytes\": 4096,\n",
            "  \"benches\": {\n",
            "    \"g/q\": {\"after_ms\": 1.0}\n  },\n",
            "  \"parallel_scaling\": {\n    \"workload\": \"w\"\n  },\n",
            "  \"durability\": {\n    \"wal_append/100_commits\": {\"after_ms\": 1.0}\n  },\n",
            "  \"columnar\": {\n    \"g/q\": {\"row_ms\": 2.0, \"batch_ms\": 1.0, \"speedup\": 2.00}\n  },\n",
            "  \"lifecycle\": {\n    \"cancel_latency\": {\"p50_ms\": 0.5, \"p95_ms\": 1.0}\n  }\n}\n"
        )
        .to_string()
    }

    fn good_results() -> Vec<(String, f64)> {
        vec![("g/q".to_string(), 1.0)]
    }

    #[test]
    fn well_formed_summary_validates() {
        let parallel = vec![("q".to_string(), [3.0, 2.0, 1.5])];
        validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &parallel,
            &[],
            &[],
            0,
            4096,
        )
        .expect("well-formed summary passes validation");
    }

    #[test]
    fn missing_required_key_is_rejected() {
        for key in [
            "\"host_parallelism\"",
            "\"memory_budget\"",
            "\"peak_pool_bytes\"",
            "\"durability\"",
            "\"columnar\"",
            "\"lifecycle\"",
        ] {
            let body = good_body().replace(key, "\"renamed\"");
            let err = validate_summary(
                &body,
                4,
                &good_results(),
                &BTreeMap::new(),
                &[],
                &[],
                &[],
                0,
                0,
            )
            .unwrap_err();
            assert!(err.contains(key.trim_matches('"')), "got: {err}");
        }
    }

    #[test]
    fn peak_above_a_nonzero_budget_is_rejected() {
        let err = validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &[],
            &[],
            1024,
            4096,
        )
        .unwrap_err();
        assert!(err.contains("hard ceiling"), "got: {err}");
        // Unbounded (0) accepts any peak; a peak within budget passes.
        validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &[],
            &[],
            0,
            4096,
        )
        .expect("unbounded budget accepts any peak");
        validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &[],
            &[],
            8192,
            4096,
        )
        .expect("peak within budget passes");
    }

    #[test]
    fn unbalanced_braces_are_rejected() {
        let body = format!("{}}}", good_body());
        let err = validate_summary(
            &body,
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &[],
            &[],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("unbalanced"), "got: {err}");
    }

    #[test]
    fn non_positive_timings_are_rejected() {
        let zero = vec![("g/q".to_string(), 0.0)];
        let err = validate_summary(
            &good_body(),
            4,
            &zero,
            &BTreeMap::new(),
            &[],
            &[],
            &[],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("non-positive timing"), "got: {err}");

        let bad_base: BTreeMap<String, f64> = [("g/q".to_string(), -1.0)].into_iter().collect();
        let err = validate_summary(
            &good_body(),
            4,
            &good_results(),
            &bad_base,
            &[],
            &[],
            &[],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("baseline"), "got: {err}");

        let bad_parallel = vec![("q".to_string(), [3.0, f64::NAN, 1.5])];
        let err = validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &bad_parallel,
            &[],
            &[],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("parallel timing"), "got: {err}");
    }

    #[test]
    fn non_positive_durability_timing_is_rejected() {
        let bad = vec![("wal_append/100_commits".to_string(), 0.0)];
        let err = validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &bad,
            &[],
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("durability timing"), "got: {err}");
    }

    #[test]
    fn non_positive_columnar_timing_is_rejected() {
        let bad = vec![("g/q".to_string(), [2.0, 0.0])];
        let err = validate_summary(
            &good_body(),
            4,
            &good_results(),
            &BTreeMap::new(),
            &[],
            &[],
            &bad,
            0,
            0,
        )
        .unwrap_err();
        assert!(err.contains("columnar timing"), "got: {err}");
    }

    /// Results with the joinback bench at a controllable multiple of
    /// its three 1.0 ms provenance siblings.
    fn joinback_results(joinback_ms: f64) -> Vec<(String, f64)> {
        vec![
            ("provenance_join/prov_two_joins".to_string(), 1.0),
            ("provenance_join/prov_left_join".to_string(), 1.0),
            ("provenance_join/prov_union".to_string(), 1.0),
            ("provenance_join/prov_agg_joinback".to_string(), joinback_ms),
        ]
    }

    #[test]
    fn joinback_regression_beyond_ratio_limit_is_rejected() {
        // 13.2x the sibling median — the shape of the PR 7-8 regression.
        let err = check_joinback_regression(&joinback_results(13.2)).unwrap_err();
        assert!(err.contains("prov_agg_joinback"), "got: {err}");
        assert!(err.contains("13.2x"), "got: {err}");
    }

    #[test]
    fn joinback_within_ratio_limit_passes() {
        check_joinback_regression(&joinback_results(10.4))
            .expect("a healthy joinback ratio passes");
    }

    #[test]
    fn joinback_guard_needs_enough_siblings() {
        // With fewer than two sibling provenance benches (or without the
        // joinback bench at all) the median is meaningless: skip.
        let mut partial = joinback_results(99.0);
        partial.drain(..2);
        check_joinback_regression(&partial).expect("one sibling is not enough to judge");
        check_joinback_regression(&good_results()).expect("no joinback bench, nothing to guard");
    }

    #[test]
    fn cancel_latency_validation() {
        check_cancel_latency(&[0.5, 1.0]).expect("healthy percentiles pass");
        check_cancel_latency(&[0.5, 0.5]).expect("equal percentiles pass");
        let err = check_cancel_latency(&[0.0, 1.0]).unwrap_err();
        assert!(err.contains("non-positive"), "got: {err}");
        let err = check_cancel_latency(&[0.5, f64::NAN]).unwrap_err();
        assert!(err.contains("non-positive"), "got: {err}");
        let err = check_cancel_latency(&[2.0, 1.0]).unwrap_err();
        assert!(err.contains("below p50"), "got: {err}");
    }

    #[test]
    fn empty_results_are_rejected() {
        let err = validate_summary(&good_body(), 4, &[], &BTreeMap::new(), &[], &[], &[], 0, 0)
            .unwrap_err();
        assert!(err.contains("no benchmark results"), "got: {err}");
    }
}
