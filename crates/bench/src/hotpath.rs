//! The hot-path workload shared by the `scan_project_filter` and
//! `provenance_join` Criterion benches and the `bench_summary` emitter
//! (which writes the machine-readable `BENCH_3.json`).
//!
//! Both benches measure *execution only*: every query is prepared once
//! (parse + provenance rewrite + optimization paid up front) and the
//! prepared plan is re-executed, so the numbers isolate the per-row cost
//! of the executor — exactly the path the shared-row representation and
//! compiled expressions optimize.

use perm_core::PermDb;

use crate::workload::forum;

/// Scale used by both benches and the emitter so numbers are comparable.
pub const HOTPATH_SCALE: usize = 4000;
/// Generator seed (the workload is deterministic per seed).
pub const HOTPATH_SEED: u64 = 42;

/// The forum database both bench groups run against. Carries hash indexes
/// on the join columns (`users.uid`, `messages.mid`, `approved.mid`) so the
/// planner's index-aware join strategies have something to work with.
pub fn hotpath_db() -> PermDb {
    let mut db = forum(HOTPATH_SCALE, HOTPATH_SEED);
    {
        let mut cat = db.catalog_mut();
        cat.table_mut("users").unwrap().create_index(0).unwrap();
        cat.table_mut("messages").unwrap().create_index(0).unwrap();
        cat.table_mut("approved").unwrap().create_index(1).unwrap();
    }
    db
}

/// Filter/project-heavy queries without provenance: the raw executor
/// hot path (scan → filter → project), expression evaluation dominated.
pub fn scan_project_filter_queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "filter_arith",
            "SELECT mid, text FROM messages WHERE mid % 4 = 0 AND uid >= 10".to_string(),
        ),
        (
            "project_exprs",
            "SELECT mid * 2 + 1, upper(text), length(text) - 5 FROM messages".to_string(),
        ),
        (
            "filter_like",
            "SELECT mid FROM messages WHERE text LIKE 'message body 1%'".to_string(),
        ),
        (
            "filter_in_list",
            "SELECT mid, uid FROM messages WHERE uid IN (1, 2, 3, 5, 8, 13, 21, 34)".to_string(),
        ),
        (
            "sort_expr",
            "SELECT mid, uid FROM messages WHERE mid % 2 = 0 ORDER BY uid * 1000 + mid LIMIT 50"
                .to_string(),
        ),
    ]
}

/// Provenance queries whose rewrites produce the wide, join-heavy plans
/// the paper's approach multiplies the engine's per-row cost by.
pub fn provenance_join_queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "prov_spj",
            "SELECT PROVENANCE m.text, u.name FROM messages m JOIN users u ON m.uid = u.uid \
             WHERE m.mid % 4 = 0"
                .to_string(),
        ),
        (
            "prov_agg_joinback",
            "SELECT PROVENANCE a.mid, count(*) FROM messages m JOIN approved a ON m.mid = a.mid \
             GROUP BY a.mid"
                .to_string(),
        ),
        (
            "prov_setop_view",
            "SELECT PROVENANCE mid, text FROM v1 WHERE mid % 3 = 0".to_string(),
        ),
        // Multi-join provenance plans: the shapes where join order, column
        // pruning and index-aware strategies matter most. The selective
        // predicate sits on the *last* table in FROM order, so a left-deep
        // in-order execution is the worst order.
        (
            "prov_3join",
            "SELECT PROVENANCE a.mid, m.text, u.name FROM approved a \
             JOIN messages m ON a.mid = m.mid \
             JOIN users u ON m.uid = u.uid \
             WHERE u.uid < 12"
                .to_string(),
        ),
        (
            "prov_4join",
            "SELECT PROVENANCE ua.name, m.text FROM approved a \
             JOIN users ua ON a.uid = ua.uid \
             JOIN messages m ON a.mid = m.mid \
             JOIN users um ON m.uid = um.uid \
             WHERE um.uid < 6"
                .to_string(),
        ),
    ]
}

/// Scale of the parallel-scaling workload: big enough that every
/// pipeline of the measured queries clears the default parallel row
/// threshold, so the planner's chosen DOP — not the threshold — is what
/// the bench varies.
pub const PARALLEL_SCALE: usize = 40_000;

/// The forum database the `parallel_scaling` bench runs against (same
/// shape and indexes as [`hotpath_db`], [`PARALLEL_SCALE`] rows).
pub fn parallel_db() -> PermDb {
    let mut db = forum(PARALLEL_SCALE, HOTPATH_SEED);
    {
        let mut cat = db.catalog_mut();
        cat.table_mut("users").unwrap().create_index(0).unwrap();
        cat.table_mut("messages").unwrap().create_index(0).unwrap();
        cat.table_mut("approved").unwrap().create_index(1).unwrap();
    }
    db
}

/// A session over `db` pinned to `dop` (`1` = the serial baseline).
pub fn parallel_session(db: &PermDb, dop: usize) -> perm_core::Session {
    db.server()
        .session_with_options(perm_core::SessionOptions::default().with_max_parallelism(dop))
}

/// The DOP-scaling workload: an expression-heavy scan, a wide 3-join
/// provenance plan (the selective predicate keeps half the users, so the
/// joins stay large) and the aggregation join-back — the query classes
/// where the provenance rewrite multiplies per-row work.
pub fn parallel_scaling_queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "scan_project",
            "SELECT mid * 2 + 1, upper(text), length(text) - 5 FROM messages \
             WHERE mid % 2 = 0"
                .to_string(),
        ),
        (
            "prov_3join_wide",
            "SELECT PROVENANCE a.mid, m.text, u.name FROM approved a \
             JOIN messages m ON a.mid = m.mid \
             JOIN users u ON m.uid = u.uid \
             WHERE u.uid < 2000"
                .to_string(),
        ),
        (
            "prov_agg_joinback",
            "SELECT PROVENANCE a.mid, count(*) FROM messages m JOIN approved a ON m.mid = a.mid \
             GROUP BY a.mid"
                .to_string(),
        ),
    ]
}

/// All `(group, name, sql)` rows the emitter measures.
pub fn all_queries() -> Vec<(&'static str, &'static str, String)> {
    let mut out = Vec::new();
    for (name, sql) in scan_project_filter_queries() {
        out.push(("scan_project_filter", name, sql));
    }
    for (name, sql) in provenance_join_queries() {
        out.push(("provenance_join", name, sql));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_hotpath_query_prepares_and_runs() {
        let db = forum(120, HOTPATH_SEED);
        let session = db.server().session();
        for (group, name, sql) in all_queries() {
            let prepared = session
                .prepare(&sql)
                .unwrap_or_else(|e| panic!("{group}/{name} fails to prepare: {e}"));
            prepared
                .execute()
                .unwrap_or_else(|e| panic!("{group}/{name} fails to execute: {e}"));
        }
    }
}
