//! # perm-bench
//!
//! Workload generators and measurement helpers for the Perm reproduction's
//! evaluation harness. See `src/bin/harness.rs` for the per-figure
//! reproduction binary and `benches/` for the Criterion benchmarks.

#![forbid(unsafe_code)]

pub mod hotpath;
pub mod tpch;
pub mod workload;

use std::time::{Duration, Instant};

use perm_core::PermDb;

pub use tpch::{tpch, TpchQuery};
pub use workload::{forum, star, QueryClass, STAR_REPORT};

/// Median wall-clock time of `runs` executions of `sql` (the first run is
/// discarded as warm-up).
pub fn time_query(db: &mut PermDb, sql: &str, runs: usize) -> Duration {
    let _ = db.query(sql).expect("query is valid");
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            let _ = db.query(sql).expect("query is valid");
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Overhead factor of the provenance query over the original query.
pub fn overhead_factor(
    db: &mut PermDb,
    class: QueryClass,
    runs: usize,
) -> (Duration, Duration, f64) {
    let orig = time_query(db, class.original_sql(), runs);
    let prov = time_query(db, &class.provenance_sql(), runs);
    let factor = prov.as_secs_f64() / orig.as_secs_f64().max(1e-9);
    (orig, prov, factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers_return_positive_durations() {
        let mut db = forum(50, 5);
        let t = time_query(&mut db, "SELECT count(*) FROM messages", 3);
        assert!(t.as_nanos() > 0);
        let (orig, prov, factor) = overhead_factor(&mut db, QueryClass::Spj, 3);
        assert!(orig.as_nanos() > 0);
        assert!(prov.as_nanos() > 0);
        assert!(factor > 0.0);
    }
}
