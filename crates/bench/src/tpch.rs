//! A TPC-H-shaped workload.
//!
//! The companion ICDE'09 paper evaluates Perm's provenance-computation
//! overhead on TPC-H. We reproduce that setting with a scaled-down,
//! self-generated subset of the schema (`customer`, `orders`, `lineitem`,
//! `nation`) and provenance variants of three TPC-H-flavoured queries:
//!
//! * **Q1-ish** — pricing summary: grand aggregation over a filtered
//!   `lineitem` scan;
//! * **Q3-ish** — shipping priority: 3-way join + GROUP BY;
//! * **Q4-ish** — order priority checking: aggregation over an `IN`
//!   sublink.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use perm_core::PermDb;
use perm_types::{Tuple, Value};

/// TPC-H-flavoured queries, original and provenance form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchQuery {
    PricingSummary,
    ShippingPriority,
    OrderPriority,
}

impl TpchQuery {
    pub const ALL: [TpchQuery; 3] = [
        TpchQuery::PricingSummary,
        TpchQuery::ShippingPriority,
        TpchQuery::OrderPriority,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TpchQuery::PricingSummary => "Q1 pricing summary",
            TpchQuery::ShippingPriority => "Q3 shipping priority",
            TpchQuery::OrderPriority => "Q4 order priority",
        }
    }

    pub fn original_sql(self) -> &'static str {
        match self {
            TpchQuery::PricingSummary => {
                "SELECT returnflag, count(*), sum(extendedprice), avg(discount) \
                 FROM lineitem WHERE shipdate <= 90 GROUP BY returnflag"
            }
            TpchQuery::ShippingPriority => {
                "SELECT o.okey, sum(l.extendedprice), o.odate \
                 FROM customer c JOIN orders o ON c.ckey = o.ckey \
                      JOIN lineitem l ON o.okey = l.okey \
                 WHERE c.segment = 'BUILDING' AND o.odate < 50 \
                 GROUP BY o.okey, o.odate"
            }
            TpchQuery::OrderPriority => {
                "SELECT o.priority, count(*) FROM orders o \
                 WHERE o.okey IN (SELECT okey FROM lineitem WHERE commitdate < receiptdate) \
                 GROUP BY o.priority"
            }
        }
    }

    pub fn provenance_sql(self) -> String {
        format!(
            "SELECT PROVENANCE {}",
            self.original_sql().trim_start_matches("SELECT ")
        )
    }
}

/// Generate the TPC-H-lite database with `scale` lineitems.
pub fn tpch(scale: usize, seed: u64) -> PermDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = PermDb::new();
    db.run_script(
        "CREATE TABLE nation (nkey int NOT NULL, name text);
         CREATE TABLE customer (ckey int NOT NULL, name text, nkey int, segment text);
         CREATE TABLE orders (okey int NOT NULL, ckey int, odate int, priority text);
         CREATE TABLE lineitem (lkey int NOT NULL, okey int, extendedprice int,
                                discount float, returnflag text, shipdate int,
                                commitdate int, receiptdate int);",
    )
    .expect("schema script is valid");

    let n_nations = 8usize;
    let n_customers = (scale / 10).max(2);
    let n_orders = (scale / 4).max(2);
    let segments = ["BUILDING", "AUTOMOBILE", "MACHINERY"];
    let priorities = ["1-URGENT", "3-MEDIUM", "5-LOW"];
    let flags = ["A", "N", "R"];

    {
        let mut cat = db.catalog_mut();
        let nation = cat.table_mut("nation").expect("nation");
        for n in 0..n_nations {
            nation.push_raw(Tuple::new(vec![
                Value::Int(n as i64),
                Value::text(format!("nation{n}")),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let customer = cat.table_mut("customer").expect("customer");
        for c in 0..n_customers {
            customer.push_raw(Tuple::new(vec![
                Value::Int(c as i64),
                Value::text(format!("customer{c}")),
                Value::Int(rng.random_range(0..n_nations) as i64),
                Value::text(segments[rng.random_range(0..segments.len())]),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let orders = cat.table_mut("orders").expect("orders");
        for o in 0..n_orders {
            orders.push_raw(Tuple::new(vec![
                Value::Int(o as i64),
                Value::Int(rng.random_range(0..n_customers) as i64),
                Value::Int(rng.random_range(0..100)),
                Value::text(priorities[rng.random_range(0..priorities.len())]),
            ]));
        }
    }
    {
        let mut cat = db.catalog_mut();
        let lineitem = cat.table_mut("lineitem").expect("lineitem");
        for l in 0..scale {
            let commit = rng.random_range(0..100);
            let receipt = commit + rng.random_range(0..10) - 4;
            lineitem.push_raw(Tuple::new(vec![
                Value::Int(l as i64),
                Value::Int(rng.random_range(0..n_orders) as i64),
                Value::Int(rng.random_range(100..10_000)),
                Value::Float(rng.random_range(0..10) as f64 / 100.0),
                Value::text(flags[rng.random_range(0..flags.len())]),
                Value::Int(rng.random_range(0..120)),
                Value::Int(commit),
                Value::Int(receipt),
            ]));
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_sizes() {
        let mut db = tpch(400, 9);
        let count = |db: &mut PermDb, t: &str| match db
            .query(&format!("SELECT count(*) FROM {t}"))
            .unwrap()
            .row(0)[0]
        {
            Value::Int(n) => n,
            ref other => panic!("unexpected {other:?}"),
        };
        assert_eq!(count(&mut db, "lineitem"), 400);
        assert_eq!(count(&mut db, "orders"), 100);
        assert_eq!(count(&mut db, "customer"), 40);
    }

    #[test]
    fn all_queries_run_with_and_without_provenance() {
        let mut db = tpch(300, 13);
        for q in TpchQuery::ALL {
            let orig = db
                .query(q.original_sql())
                .unwrap_or_else(|e| panic!("{} original failed: {e}", q.name()));
            let prov = db
                .query(&q.provenance_sql())
                .unwrap_or_else(|e| panic!("{} provenance failed: {e}", q.name()));
            assert!(
                prov.columns.len() > orig.columns.len(),
                "{}: provenance adds attributes",
                q.name()
            );
            // Aggregation provenance: at least one witness per result row.
            assert!(prov.row_count() >= orig.row_count(), "{}", q.name());
        }
    }

    #[test]
    fn q4_witnesses_come_from_both_relations() {
        let mut db = tpch(300, 13);
        let prov = db
            .query(&TpchQuery::OrderPriority.provenance_sql())
            .unwrap();
        assert!(prov.column_index("prov_public_orders_okey").is_some());
        assert!(prov.column_index("prov_public_lineitem_lkey").is_some());
    }
}
