//! The two-phase optimizer under the microscope: what do the cost-based
//! plans buy on multi-join provenance queries, and what does planning
//! itself cost?
//!
//! Three groups over the shared hotpath forum database (which carries
//! hash indexes on the join columns):
//!
//! * `optimizer_plans/exec_optimized` — prepared execution of the
//!   multi-join provenance queries through the full logical+physical
//!   optimizer (column pruning, join reordering, strategy selection);
//! * `optimizer_plans/exec_unoptimized` — the same queries with the
//!   logical pass skipped (the physical planner still runs, since the
//!   executor only consumes physical plans): measures what the logical
//!   rewrites contribute;
//! * `optimizer_plans/plan` — bind + optimize + physical-plan latency,
//!   the one-time cost `Session::prepare` pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::hotpath;
use perm_exec::{optimize_with, plan_physical, Executor};

/// The multi-join shapes where plan choice matters most.
fn multi_join_queries() -> Vec<(&'static str, String)> {
    hotpath::provenance_join_queries()
        .into_iter()
        .filter(|(name, _)| name.starts_with("prov_3") || name.starts_with("prov_4"))
        .collect()
}

fn optimizer_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_plans");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let db = hotpath::hotpath_db();
    let session = db.server().session();

    for (name, sql) in multi_join_queries() {
        let prepared = session.prepare(&sql).expect("hotpath query prepares");
        group.bench_with_input(BenchmarkId::new("exec_optimized", name), &sql, |b, _| {
            b.iter(|| black_box(prepared.execute().expect("valid")));
        });

        // The same query with the logical optimizer skipped: the raw
        // bound (provenance-rewritten) plan, lowered and executed.
        let snapshot = session.snapshot();
        let raw = session.bind_sql_on(&snapshot, &sql).expect("binds");
        let physical_raw = plan_physical(&snapshot, &raw);
        group.bench_with_input(BenchmarkId::new("exec_unoptimized", name), &sql, |b, _| {
            b.iter(|| {
                let exec = Executor::new(session.snapshot());
                black_box(exec.run_physical(&physical_raw).expect("valid"))
            });
        });

        // Planning latency: logical pass + physical lowering.
        group.bench_with_input(BenchmarkId::new("plan", name), &sql, |b, _| {
            let estimator = perm_exec::CatalogStats(&snapshot);
            b.iter(|| {
                let optimized = optimize_with(raw.clone(), &estimator);
                black_box(plan_physical(&snapshot, &optimized))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, optimizer_plans);
criterion_main!(benches);
