//! Executor hot path on provenance queries: the rewrites produce wide,
//! join-heavy plans (SPJ widening, aggregation join-back, padded set
//! operations), so per-row value movement dominates.
//!
//! Queries are prepared once; the bench times prepared re-execution. This
//! is the second workload `BENCH_3.json` records before/after numbers for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::hotpath;

fn provenance_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_join");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let db = hotpath::hotpath_db();
    let session = db.server().session();

    for (name, sql) in hotpath::provenance_join_queries() {
        let prepared = session.prepare(&sql).expect("hotpath query prepares");
        group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, _| {
            b.iter(|| black_box(prepared.execute().expect("valid")));
        });
    }
    group.finish();
}

criterion_group!(benches, provenance_join);
criterion_main!(benches);
