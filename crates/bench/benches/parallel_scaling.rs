//! Morsel-driven parallelism scaling: the same prepared provenance
//! queries at DOP 1, 2 and 4 over the forum workload at
//! [`hotpath::PARALLEL_SCALE`].
//!
//! DOP 1 runs the exact serial operator code (the planner assigns no
//! parallel pipelines), so `dop1` *is* the no-overhead baseline; `dop2`
//! and `dop4` measure the worker-pool fan-out. Wall-clock scaling
//! obviously requires the machine to have that many cores — on a
//! single-core host the higher DOPs measure coordination overhead
//! instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::hotpath;

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let db = hotpath::parallel_db();
    for (name, sql) in hotpath::parallel_scaling_queries() {
        for dop in [1usize, 2, 4] {
            let session = hotpath::parallel_session(&db, dop);
            let prepared = session.prepare(&sql).expect("scaling query prepares");
            group.bench_with_input(BenchmarkId::new(name, format!("dop{dop}")), &sql, |b, _| {
                b.iter(|| black_box(prepared.execute().expect("valid")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);
