//! Lazy vs eager provenance (paper §1: "decide whether he will store the
//! provenance of a query for later reuse or let the system compute it on
//! the fly").
//!
//! Expected shape: retrieving eagerly-stored provenance is a plain table
//! read and far cheaper per retrieval; lazy recomputation pays the whole
//! rewrite + execution every time (but needs no storage and always sees
//! fresh base data). The crossover is the number of retrievals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::{star, STAR_REPORT};
use perm_core::materialize_provenance;

fn lazy_vs_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_vs_eager");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let prov_sql = format!(
        "SELECT PROVENANCE {}",
        STAR_REPORT.trim_start_matches("SELECT ")
    );
    for scale in [500usize, 5_000] {
        // Lazy: recompute q+ per retrieval.
        let mut db = star(scale, 42);
        group.bench_with_input(BenchmarkId::new("lazy", scale), &scale, |b, _| {
            b.iter(|| black_box(db.query(&prov_sql).expect("valid")));
        });

        // Eager: materialize once, then read the stored relation.
        let mut db = star(scale, 42);
        materialize_provenance(&mut db, "stored_report", &prov_sql).expect("materialize");
        group.bench_with_input(BenchmarkId::new("eager_read", scale), &scale, |b, _| {
            b.iter(|| black_box(db.query("SELECT * FROM stored_report").expect("valid")));
        });

        // The one-time materialization cost itself.
        group.bench_with_input(
            BenchmarkId::new("eager_materialize", scale),
            &scale,
            |b, _| {
                b.iter_with_setup(
                    || star(scale, 42),
                    |mut db| {
                        materialize_provenance(&mut db, "stored_report", &prov_sql)
                            .expect("materialize");
                        black_box(db)
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, lazy_vs_eager);
criterion_main!(benches);
