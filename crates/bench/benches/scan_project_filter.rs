//! Executor hot path on filter/project-heavy queries: scan → filter →
//! project chains whose cost is per-row expression evaluation.
//!
//! Queries are prepared once; the bench times prepared re-execution, so
//! parse/rewrite/optimize costs are out of the measurement. This is the
//! workload `BENCH_3.json` records before/after numbers for (see
//! `src/bin/bench_summary.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::hotpath;

fn scan_project_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_project_filter");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let db = hotpath::hotpath_db();
    let session = db.server().session();

    for (name, sql) in hotpath::scan_project_filter_queries() {
        let prepared = session.prepare(&sql).expect("hotpath query prepares");
        group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, _| {
            b.iter(|| black_box(prepared.execute().expect("valid")));
        });
    }
    group.finish();
}

criterion_group!(benches, scan_project_filter);
criterion_main!(benches);
