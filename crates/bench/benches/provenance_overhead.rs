//! Overhead of provenance computation: `q+` vs `q`, per query class and
//! scale — the shape of the companion ICDE'09 evaluation (the demo paper
//! itself reports no numbers).
//!
//! Expected shape: SPJ / set-operation / nested-sublink provenance costs a
//! small constant factor over the original query; aggregation provenance
//! is the most expensive class because the rewrite recomputes the
//! aggregate *and* joins it back against the rewritten input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::{forum, QueryClass};

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_overhead");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for scale in [100usize, 1_000, 5_000] {
        let mut db = forum(scale, 42);
        for class in QueryClass::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{}/original", class.name()), scale),
                &scale,
                |b, _| {
                    b.iter(|| black_box(db.query(class.original_sql()).expect("valid")));
                },
            );
            let prov_sql = class.provenance_sql();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/provenance", class.name()), scale),
                &scale,
                |b, _| {
                    b.iter(|| black_box(db.query(&prov_sql).expect("valid")));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
