//! Prepared-statement reuse vs one-shot queries on the TPC-H-style
//! workload.
//!
//! `Session::prepare` caches the parsed, provenance-rewritten, optimized
//! plan; `Prepared::execute` then only snapshots the catalog and runs it.
//! One-shot `Session::query` pays parse + analysis + provenance rewrite +
//! optimization on every call. Expected shape: prepared re-execution wins
//! on every query class, and the margin grows with rewrite complexity
//! (joins, aggregation, sublinks) relative to execution cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::{tpch, TpchQuery};

fn prepared_vs_one_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_reuse");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let db = tpch(200, 42);
    let session = db.server().session();

    for q in TpchQuery::ALL {
        let sql = q.provenance_sql();

        group.bench_with_input(BenchmarkId::new("one_shot", q.name()), &sql, |b, sql| {
            b.iter(|| black_box(session.query(sql).expect("valid")));
        });

        let prepared = session.prepare(&sql).expect("prepares");
        group.bench_with_input(BenchmarkId::new("prepared", q.name()), &sql, |b, _| {
            b.iter(|| black_box(prepared.execute().expect("valid")));
        });

        // The one-time preparation cost being amortized.
        group.bench_with_input(
            BenchmarkId::new("prepare_only", q.name()),
            &sql,
            |b, sql| {
                b.iter(|| black_box(session.prepare(sql).expect("valid")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, prepared_vs_one_shot);
criterion_main!(benches);
