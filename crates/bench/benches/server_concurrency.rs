//! Multi-threaded throughput of one `PermServer`.
//!
//! N threads each run a slice of a fixed batch of provenance queries
//! through their own `Session`; the benchmark measures the wall-clock of
//! the whole batch. Read-only sessions execute against lock-free catalog
//! snapshots, so throughput should scale with threads until the machine
//! runs out of cores — the contrast is the `threads=1` row. On a
//! single-core host the informative signal is instead the *absence of
//! contention overhead*: the batch should take the same wall-clock at
//! every thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::thread;
use std::time::Duration;

use perm_bench::{forum, QueryClass};

/// Total queries per measured batch, split across the worker threads.
const BATCH: usize = 48;

fn concurrent_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_concurrency");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let db = forum(400, 42);
    let server = db.server();
    let sql = QueryClass::Spj.provenance_sql();

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("provenance_batch", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    thread::scope(|s| {
                        let handles: Vec<_> = (0..threads)
                            .map(|_| {
                                let session = server.session();
                                let sql = &sql;
                                s.spawn(move || {
                                    for _ in 0..BATCH / threads {
                                        black_box(session.query(sql).expect("valid"));
                                    }
                                })
                            })
                            .collect();
                        for h in handles {
                            h.join().unwrap();
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, concurrent_throughput);
criterion_main!(benches);
