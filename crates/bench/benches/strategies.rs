//! Rewrite-strategy ablations (DESIGN.md "design decisions called out for
//! ablation benches"):
//!
//! 1. **Union strategy** — padded UNION ALL of rewritten branches vs
//!    join-back against the original result, plus the heuristic and
//!    cost-based choosers. Expected: padded wins; both choosers match it.
//! 2. **Aggregation join-back implementation** — the NULL-safe hash join
//!    the executor picks vs a forced nested loop. Expected: hash join wins
//!    and the gap grows with scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use perm_bench::{forum, QueryClass};
use perm_core::{SessionOptions, StrategyMode, UnionStrategy};
use perm_exec::{optimize, Executor};

fn union_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_setop");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let sql = QueryClass::SetOperation.provenance_sql();
    for scale in [500usize, 5_000] {
        for (name, mode) in [
            (
                "padded_union",
                StrategyMode::Fixed(UnionStrategy::PaddedUnion),
            ),
            ("join_back", StrategyMode::Fixed(UnionStrategy::JoinBack)),
            ("heuristic", StrategyMode::Heuristic),
            ("cost_based", StrategyMode::CostBased),
        ] {
            let mut db = forum(scale, 42);
            db.set_options(SessionOptions::default().with_union_strategy(mode));
            group.bench_with_input(BenchmarkId::new(name, scale), &scale, |b, _| {
                b.iter(|| black_box(db.query(&sql).expect("valid")));
            });
        }
    }
    group.finish();
}

fn aggregation_join_back(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_agg_join");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let sql = QueryClass::Aggregation.provenance_sql();
    for scale in [200usize, 1_000] {
        let db = {
            let db = forum(scale, 42);
            // Bind once; benchmark execution only, so the ablation isolates
            // the join implementation.
            let plan = db.bind_sql(&sql).expect("valid");
            let optimized = optimize(plan);
            (db, optimized)
        };
        let (db, plan) = db;
        group.bench_with_input(BenchmarkId::new("hash_join", scale), &scale, |b, _| {
            let exec = Executor::new(db.catalog());
            b.iter(|| black_box(exec.run(&plan).expect("runs")));
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", scale), &scale, |b, _| {
            let exec = Executor::new_nested_loop_only(db.catalog());
            b.iter(|| black_box(exec.run(&plan).expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, union_strategies, aggregation_join_back);
criterion_main!(benches);
