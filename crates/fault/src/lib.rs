#![forbid(unsafe_code)]
//! Deterministic fault injection shared by every layer of the engine.
//!
//! Every write, fsync, rename, truncate, and read the WAL / checkpoint /
//! spill paths perform goes through the I/O wrappers in this crate, and
//! the executor's worker, morsel, kernel, allocation and exchange paths
//! carry [`exec_point`] sites. Each call site names a *failpoint site*
//! (a stable string like `"wal.append.write"` or `"exec.worker.panic"`);
//! when the process-global registry has an action configured for that
//! site, the wrapper injects the failure instead of (or in the middle
//! of) doing the real work. With no failpoints configured the wrappers
//! cost one relaxed atomic load.
//!
//! Actions are configured programmatically ([`configure`]) or via the
//! `PERM_FAILPOINTS` environment variable ([`configure_from_env`]).
//! The spec grammar is
//!
//! ```text
//! spec   := entry (';' entry)*
//! entry  := site '=' action ['@' N ['+']]
//! action := short_write(K)   -- write only the first K bytes, then error
//!         | torn_write(K)    -- write K bytes plus one corrupted byte
//!         | sync_fail        -- report fsync failure without syncing
//!         | read_err         -- fail the read
//!         | io_err           -- fail the operation before doing anything
//!         | stall(MS)        -- sleep MS milliseconds, then proceed
//!         | panic            -- panic at the site (worker containment)
//!         | deny             -- typed ResourceExhausted at the site
//!         | disconnect       -- typed Execution error (channel teardown)
//! ```
//!
//! `@N` fires the action on the Nth hit of the site only (1-based);
//! `@N+` fires on the Nth and every later hit; no suffix means `@1+`
//! (every hit). Hit counters reset whenever [`configure`] installs a new
//! spec, so a test run is deterministic end to end.
//!
//! ## Executor sites
//!
//! The chaos harness drives these through [`exec_point`]:
//!
//! | site | loop it sits in |
//! |---|---|
//! | `exec.worker.start` | pool worker task startup (`parallel::run_workers`) |
//! | `exec.morsel.claim` | per-morsel claim loop (`parallel::map_morsels`) |
//! | `exec.kernel.batch` | per-batch kernel dispatch (`executor`) |
//! | `exec.memory.grow` | reservation grow (`memory::try_grow`) |
//! | `exec.exchange.send` | exchange producer send loop (`stream`) |
//! | `exec.admission.wait` | admission wait loop (`core::admission`) |
//! | `exec.replay.statement` | WAL replay loop (`core::server`) |

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use perm_types::{PermError, Result};

/// The failure a site injects when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Write only the first `K` bytes of the buffer, then report an error.
    ShortWrite(usize),
    /// Write the first `K` bytes plus one bit-flipped byte, then report an
    /// error — a prefix that *looks* present but fails its checksum.
    TornWrite(usize),
    /// Skip the fsync and report that it failed.
    SyncFail,
    /// Fail the read without touching the underlying file.
    ReadErr,
    /// Fail the whole operation before any side effect.
    IoErr,
    /// Sleep the given number of milliseconds, then proceed normally —
    /// a stalled worker or a slow disk, for exercising cancellation and
    /// timeout paths.
    Stall(u64),
    /// Panic at the site. Only meaningful at executor sites that sit
    /// under the worker-pool containment boundary.
    Panic,
    /// Inject a typed `ResourceExhausted` — a denied allocation.
    Deny,
    /// Inject a typed `Execution` error describing a torn-down channel.
    Disconnect,
}

#[derive(Debug, Clone)]
struct Entry {
    action: FailAction,
    /// First 1-based hit that triggers.
    from_hit: u64,
    /// Whether hits after `from_hit` keep triggering.
    persistent: bool,
    hits: u64,
    fired: u64,
}

/// Number of configured entries; lets `hit()` return without locking when
/// no failpoints are installed (the common case).
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Replace the installed failpoints with `spec` (see module docs for the
/// grammar). An empty spec clears everything. Hit counters start at zero.
pub fn configure(spec: &str) -> Result<()> {
    let mut map = HashMap::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, rest) = part.split_once('=').ok_or_else(|| {
            PermError::Execution(format!("failpoint spec `{part}`: expected site=action"))
        })?;
        let (action_str, hit_str) = match rest.split_once('@') {
            Some((a, h)) => (a.trim(), Some(h.trim())),
            None => (rest.trim(), None),
        };
        let action = parse_action(action_str)
            .ok_or_else(|| PermError::Execution(format!("failpoint spec: bad action `{rest}`")))?;
        let (from_hit, persistent) = match hit_str {
            None => (1, true),
            Some(h) => {
                let (n, plus) = match h.strip_suffix('+') {
                    Some(n) => (n, true),
                    None => (h, false),
                };
                let n: u64 = n.parse().map_err(|_| {
                    PermError::Execution(format!("failpoint spec: bad hit count `{h}`"))
                })?;
                if n == 0 {
                    return Err(PermError::Execution(
                        "failpoint spec: hit counts are 1-based".into(),
                    ));
                }
                (n, plus)
            }
        };
        map.insert(
            site.trim().to_string(),
            Entry {
                action,
                from_hit,
                persistent,
                hits: 0,
                fired: 0,
            },
        );
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.store(map.len(), Ordering::Relaxed);
    *reg = map;
    Ok(())
}

fn parse_action(s: &str) -> Option<FailAction> {
    if let Some(k) = s.strip_prefix("short_write(") {
        return k
            .strip_suffix(')')?
            .trim()
            .parse()
            .ok()
            .map(FailAction::ShortWrite);
    }
    if let Some(k) = s.strip_prefix("torn_write(") {
        return k
            .strip_suffix(')')?
            .trim()
            .parse()
            .ok()
            .map(FailAction::TornWrite);
    }
    if let Some(ms) = s.strip_prefix("stall(") {
        return ms
            .strip_suffix(')')?
            .trim()
            .parse()
            .ok()
            .map(FailAction::Stall);
    }
    match s {
        "sync_fail" => Some(FailAction::SyncFail),
        "read_err" => Some(FailAction::ReadErr),
        "io_err" => Some(FailAction::IoErr),
        "panic" => Some(FailAction::Panic),
        "deny" => Some(FailAction::Deny),
        "disconnect" => Some(FailAction::Disconnect),
        _ => None,
    }
}

/// Remove every installed failpoint.
pub fn clear() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.store(0, Ordering::Relaxed);
    reg.clear();
}

/// Install failpoints from the `PERM_FAILPOINTS` environment variable if
/// it is set; otherwise leave the registry untouched.
pub fn configure_from_env() -> Result<()> {
    match std::env::var("PERM_FAILPOINTS") {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(()),
    }
}

/// Record a hit on `site` and return the action to inject, if any.
pub fn hit(site: &str) -> Option<FailAction> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = reg.get_mut(site)?;
    entry.hits += 1;
    let trigger = if entry.persistent {
        entry.hits >= entry.from_hit
    } else {
        entry.hits == entry.from_hit
    };
    if trigger {
        entry.fired += 1;
        Some(entry.action)
    } else {
        None
    }
}

/// How many times `site` has actually injected its action since the last
/// [`configure`]. Lets tests assert a scenario exercised the site.
pub fn fired_count(site: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.get(site).map_or(0, |e| e.fired)
}

/// Executor-side failpoint: stalls, panics, or returns a typed error
/// according to the configured action. Unlike the I/O wrappers there is
/// no real operation to perform — an unconfigured site is a no-op.
///
/// `Stall` sleeps and then proceeds; `Panic` panics (the worker pool's
/// containment boundary turns it into a typed error for one query);
/// `Deny` surfaces as `ResourceExhausted`, `Disconnect` and the I/O
/// actions as `Execution` errors.
pub fn exec_point(site: &str, operator: &str) -> Result<()> {
    match hit(site) {
        None => Ok(()),
        Some(FailAction::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        Some(FailAction::Deny) => Err(PermError::ResourceExhausted {
            operator: format!("{operator} (injected denial at {site})"),
            requested: 0,
            budget: 0,
        }),
        Some(FailAction::Disconnect) => Err(PermError::Execution(format!(
            "{operator}: channel disconnected (injected at {site})"
        ))),
        Some(_) => Err(PermError::Execution(format!(
            "{operator}: injected failure at {site}"
        ))),
    }
}

fn injected(operator: &str, path: &Path, what: &str) -> PermError {
    PermError::Io {
        operator: operator.to_string(),
        path: path.display().to_string(),
        detail: format!("injected {what} (failpoint)"),
    }
}

fn real(operator: &str, path: &Path, e: std::io::Error) -> PermError {
    PermError::Io {
        operator: operator.to_string(),
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// `write_all` through the failpoint at `site`.
pub fn write_all(
    site: &str,
    out: &mut impl Write,
    buf: &[u8],
    operator: &str,
    path: &Path,
) -> Result<()> {
    match hit(site) {
        Some(FailAction::ShortWrite(k)) => {
            let k = k.min(buf.len());
            out.write_all(&buf[..k])
                .map_err(|e| real(operator, path, e))?;
            Err(injected(operator, path, "short write"))
        }
        Some(FailAction::TornWrite(k)) => {
            let k = k.min(buf.len());
            out.write_all(&buf[..k])
                .map_err(|e| real(operator, path, e))?;
            if k < buf.len() {
                out.write_all(&[!buf[k]])
                    .map_err(|e| real(operator, path, e))?;
            }
            Err(injected(operator, path, "torn write"))
        }
        Some(_) => Err(injected(operator, path, "write error")),
        None => out.write_all(buf).map_err(|e| real(operator, path, e)),
    }
}

/// `File::sync_all` through the failpoint at `site`.
pub fn sync(site: &str, file: &File, operator: &str, path: &Path) -> Result<()> {
    match hit(site) {
        Some(_) => Err(injected(operator, path, "fsync failure")),
        None => file.sync_all().map_err(|e| real(operator, path, e)),
    }
}

/// `read_exact` through the failpoint at `site`.
pub fn read_exact(
    site: &str,
    input: &mut impl Read,
    buf: &mut [u8],
    operator: &str,
    path: &Path,
) -> Result<()> {
    match hit(site) {
        Some(_) => Err(injected(operator, path, "read error")),
        None => input.read_exact(buf).map_err(|e| real(operator, path, e)),
    }
}

/// `fs::read` (whole file) through the failpoint at `site`.
pub fn read_file(site: &str, path: &Path, operator: &str) -> Result<Vec<u8>> {
    match hit(site) {
        Some(_) => Err(injected(operator, path, "read error")),
        None => std::fs::read(path).map_err(|e| real(operator, path, e)),
    }
}

/// `fs::rename` through the failpoint at `site`.
pub fn rename(site: &str, from: &Path, to: &Path, operator: &str) -> Result<()> {
    match hit(site) {
        Some(_) => Err(injected(operator, from, "rename failure")),
        None => std::fs::rename(from, to).map_err(|e| real(operator, from, e)),
    }
}

/// `File::set_len` through the failpoint at `site`.
pub fn set_len(site: &str, file: &File, len: u64, operator: &str, path: &Path) -> Result<()> {
    match hit(site) {
        Some(_) => Err(injected(operator, path, "truncate failure")),
        None => file.set_len(len).map_err(|e| real(operator, path, e)),
    }
}

/// Failpoint state is process-global; tests (in any crate) that install
/// failpoints take this lock first so they cannot observe each other's
/// configuration. Not a `cfg(test)` item: downstream crates' test
/// binaries need it too.
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_guard as guard;

    #[test]
    fn unconfigured_sites_never_fire() {
        let _g = guard();
        clear();
        assert_eq!(hit("wal.append.write"), None);
        let mut buf = Vec::new();
        write_all("wal.append.write", &mut buf, b"abc", "t", Path::new("x")).unwrap();
        assert_eq!(buf, b"abc");
    }

    #[test]
    fn hit_specs_once_and_persistent() {
        let _g = guard();
        configure("a=io_err@2;b=sync_fail@2+;c=read_err").unwrap();
        assert_eq!(hit("a"), None);
        assert_eq!(hit("a"), Some(FailAction::IoErr));
        assert_eq!(hit("a"), None, "@2 fires exactly once");
        assert_eq!(hit("b"), None);
        assert_eq!(hit("b"), Some(FailAction::SyncFail));
        assert_eq!(hit("b"), Some(FailAction::SyncFail), "@2+ keeps firing");
        assert_eq!(hit("c"), Some(FailAction::ReadErr), "default is every hit");
        assert_eq!(fired_count("b"), 2);
        clear();
    }

    #[test]
    fn short_and_torn_writes_leave_prefixes() {
        let _g = guard();
        configure("s=short_write(2);t=torn_write(2)").unwrap();
        let mut buf = Vec::new();
        let err = write_all("s", &mut buf, b"abcdef", "op", Path::new("f")).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(buf, b"ab");

        let mut buf = Vec::new();
        let err = write_all("t", &mut buf, b"abcdef", "op", Path::new("f")).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(buf.len(), 3);
        assert_eq!(&buf[..2], b"ab");
        assert_eq!(buf[2], !b'c', "torn write flips the next byte");
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = guard();
        clear();
        assert!(configure("nonsense").is_err());
        assert!(configure("a=explode").is_err());
        assert!(configure("a=io_err@0").is_err());
        assert!(configure("a=io_err@x").is_err());
        assert!(configure("a=short_write(").is_err());
        assert!(configure("a=stall(").is_err());
        // A failed configure leaves nothing installed.
        assert_eq!(hit("a"), None);
        clear();
    }

    #[test]
    fn exec_point_actions_surface_typed() {
        let _g = guard();
        configure("d=deny;x=disconnect;s=stall(1);e=io_err").unwrap();
        let err = exec_point("d", "HashJoin build").unwrap_err();
        assert_eq!(err.kind(), "resource");
        let err = exec_point("x", "exchange").unwrap_err();
        assert_eq!(err.kind(), "execution");
        assert!(err.to_string().contains("disconnected"), "{err}");
        exec_point("s", "worker").unwrap();
        let err = exec_point("e", "kernel").unwrap_err();
        assert_eq!(err.kind(), "execution");
        assert!(exec_point("unconfigured", "op").is_ok());
        clear();
    }

    #[test]
    fn exec_point_panic_action_panics() {
        let _g = guard();
        configure("p=panic").unwrap();
        let r = std::panic::catch_unwind(|| exec_point("p", "worker"));
        clear();
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }
}
