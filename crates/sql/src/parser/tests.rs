//! Parser tests, including the SQL-PLE extension and the paper's queries.

use super::*;

fn parse_ok(sql: &str) -> Statement {
    parse_statement(sql).unwrap_or_else(|e| panic!("parse of {sql:?} failed: {e}"))
}

fn query_of(stmt: Statement) -> Query {
    match stmt {
        Statement::Query(q) => q,
        other => panic!("expected query, got {other:?}"),
    }
}

fn select_of(q: &Query) -> &Select {
    match &q.body {
        QueryBody::Select(s) => s,
        other => panic!("expected select core, got {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Basic SELECT
// ----------------------------------------------------------------------

#[test]
fn select_star() {
    let q = query_of(parse_ok("SELECT * FROM messages"));
    let s = select_of(&q);
    assert_eq!(s.items, vec![SelectItem::Wildcard]);
    assert_eq!(s.from.len(), 1);
}

#[test]
fn select_columns_with_aliases() {
    let q = query_of(parse_ok(
        "SELECT mId, text AS body, uId author FROM messages m",
    ));
    let s = select_of(&q);
    assert_eq!(s.items.len(), 3);
    match &s.items[1] {
        SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("body")),
        other => panic!("unexpected {other:?}"),
    }
    match &s.items[2] {
        SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("author")),
        other => panic!("unexpected {other:?}"),
    }
    match &s.from[0] {
        TableRef::Relation { name, alias, .. } => {
            assert_eq!(name, "messages");
            assert_eq!(alias.as_deref(), Some("m"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn qualified_wildcard() {
    let q = query_of(parse_ok("SELECT v1.* FROM v1"));
    assert_eq!(
        select_of(&q).items,
        vec![SelectItem::QualifiedWildcard("v1".into())]
    );
}

#[test]
fn identifiers_fold_to_lowercase() {
    let q = query_of(parse_ok("SELECT MId FROM Messages"));
    match &select_of(&q).items[0] {
        SelectItem::Expr { expr, .. } => assert_eq!(*expr, Expr::col("mid")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn where_group_having_order_limit() {
    let q = query_of(parse_ok(
        "SELECT uid, count(*) FROM approved WHERE mid > 1 \
         GROUP BY uid HAVING count(*) > 1 ORDER BY uid DESC LIMIT 10 OFFSET 2",
    ));
    let s = select_of(&q);
    assert!(s.where_clause.is_some());
    assert_eq!(s.group_by.len(), 1);
    assert!(s.having.is_some());
    assert_eq!(q.order_by.len(), 1);
    assert!(q.order_by[0].desc);
    assert_eq!(q.limit, Some(10));
    assert_eq!(q.offset, Some(2));
}

#[test]
fn select_distinct() {
    let q = query_of(parse_ok("SELECT DISTINCT uid FROM approved"));
    assert!(select_of(&q).distinct);
}

#[test]
fn select_without_from() {
    let q = query_of(parse_ok("SELECT 1 + 2"));
    assert!(select_of(&q).from.is_empty());
}

// ----------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------

#[test]
fn join_kinds() {
    for (sql, kind) in [
        ("a JOIN b ON a.x = b.x", JoinKind::Inner),
        ("a INNER JOIN b ON a.x = b.x", JoinKind::Inner),
        ("a LEFT JOIN b ON a.x = b.x", JoinKind::Left),
        ("a LEFT OUTER JOIN b ON a.x = b.x", JoinKind::Left),
        ("a RIGHT JOIN b ON a.x = b.x", JoinKind::Right),
        ("a FULL OUTER JOIN b ON a.x = b.x", JoinKind::Full),
    ] {
        let q = query_of(parse_ok(&format!("SELECT * FROM {sql}")));
        match &select_of(&q).from[0] {
            TableRef::Join { kind: k, on, .. } => {
                assert_eq!(*k, kind, "{sql}");
                assert!(on.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn cross_join_has_no_condition() {
    let q = query_of(parse_ok("SELECT * FROM a CROSS JOIN b"));
    match &select_of(&q).from[0] {
        TableRef::Join { kind, on, .. } => {
            assert_eq!(*kind, JoinKind::Cross);
            assert!(on.is_none());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn join_is_left_associative() {
    let q = query_of(parse_ok(
        "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y",
    ));
    match &select_of(&q).from[0] {
        TableRef::Join { left, right, .. } => {
            assert!(matches!(**left, TableRef::Join { .. }));
            assert!(matches!(**right, TableRef::Relation { .. }));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn comma_separated_from_items() {
    let q = query_of(parse_ok("SELECT * FROM a, b, c"));
    assert_eq!(select_of(&q).from.len(), 3);
}

#[test]
fn derived_table_requires_alias() {
    assert!(parse_statement("SELECT * FROM (SELECT 1)").is_err());
    let q = query_of(parse_ok("SELECT * FROM (SELECT 1) AS t"));
    match &select_of(&q).from[0] {
        TableRef::Subquery { alias, .. } => assert_eq!(alias, "t"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parenthesized_join_tree() {
    let q = query_of(parse_ok(
        "SELECT * FROM (a JOIN b ON a.x = b.x) JOIN c ON c.y = a.x",
    ));
    match &select_of(&q).from[0] {
        TableRef::Join { left, .. } => assert!(matches!(**left, TableRef::Join { .. })),
        other => panic!("unexpected {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Set operations
// ----------------------------------------------------------------------

#[test]
fn union_of_selects_q1() {
    // q1 from Figure 1 of the paper.
    let q = query_of(parse_ok(
        "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports",
    ));
    match &q.body {
        QueryBody::SetOp { op, all, .. } => {
            assert_eq!(*op, SetOpKind::Union);
            assert!(!*all);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn union_all_keeps_duplicates() {
    let q = query_of(parse_ok("SELECT 1 UNION ALL SELECT 2"));
    match &q.body {
        QueryBody::SetOp { all, .. } => assert!(*all),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn intersect_binds_tighter_than_union() {
    let q = query_of(parse_ok("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3"));
    match &q.body {
        QueryBody::SetOp { op, right, .. } => {
            assert_eq!(*op, SetOpKind::Union);
            assert!(matches!(
                **right,
                QueryBody::SetOp {
                    op: SetOpKind::Intersect,
                    ..
                }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn set_ops_are_left_associative() {
    let q = query_of(parse_ok("SELECT 1 EXCEPT SELECT 2 UNION SELECT 3"));
    match &q.body {
        QueryBody::SetOp { op, left, .. } => {
            assert_eq!(*op, SetOpKind::Union);
            assert!(matches!(
                **left,
                QueryBody::SetOp {
                    op: SetOpKind::Except,
                    ..
                }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn order_by_applies_to_whole_set_operation() {
    let q = query_of(parse_ok("SELECT 1 AS x UNION SELECT 2 ORDER BY x"));
    assert!(matches!(q.body, QueryBody::SetOp { .. }));
    assert_eq!(q.order_by.len(), 1);
}

// ----------------------------------------------------------------------
// SQL-PLE: the provenance language extension (paper Section 2.4)
// ----------------------------------------------------------------------

#[test]
fn select_provenance() {
    let q = query_of(parse_ok("SELECT PROVENANCE mId, text FROM messages"));
    let clause = q.provenance_clause().expect("provenance clause");
    assert_eq!(clause.semantics, None, "default semantics");
}

#[test]
fn select_provenance_on_contribution_influence() {
    // Verbatim from the paper (modulo whitespace).
    let q = query_of(parse_ok(
        "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text \
         FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId",
    ));
    assert_eq!(
        q.provenance_clause().unwrap().semantics,
        Some(ContributionSemantics::Influence)
    );
}

#[test]
fn contribution_semantics_variants() {
    for (kw, sem) in [
        ("INFLUENCE", ContributionSemantics::Influence),
        ("COPY", ContributionSemantics::Copy(CopyMode::Partial)),
        (
            "COPY PARTIAL",
            ContributionSemantics::Copy(CopyMode::Partial),
        ),
        (
            "COPY COMPLETE",
            ContributionSemantics::Copy(CopyMode::Complete),
        ),
        ("LINEAGE", ContributionSemantics::Lineage),
    ] {
        let q = query_of(parse_ok(&format!(
            "SELECT PROVENANCE ON CONTRIBUTION ({kw}) * FROM t"
        )));
        assert_eq!(q.provenance_clause().unwrap().semantics, Some(sem), "{kw}");
    }
}

#[test]
fn bad_contribution_semantics_is_an_error() {
    assert!(parse_statement("SELECT PROVENANCE ON CONTRIBUTION (WITNESS) * FROM t").is_err());
}

#[test]
fn baserelation_modifier() {
    // Verbatim example from the paper.
    let q = query_of(parse_ok(
        "SELECT PROVENANCE text FROM v1 BASERELATION WHERE count > 3",
    ));
    let s = select_of(&q);
    match &s.from[0] {
        TableRef::Relation {
            name, modifiers, ..
        } => {
            assert_eq!(name, "v1");
            assert!(modifiers.baserelation);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(s.where_clause.is_some());
}

#[test]
fn from_item_provenance_attribute_list() {
    let q = query_of(parse_ok(
        "SELECT PROVENANCE * FROM imported PROVENANCE (src_id, src_origin)",
    ));
    match &select_of(&q).from[0] {
        TableRef::Relation { modifiers, .. } => {
            assert_eq!(
                modifiers.provenance_attrs.as_deref(),
                Some(&["src_id".to_string(), "src_origin".to_string()][..])
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn baserelation_on_subquery() {
    let q = query_of(parse_ok(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages) sub BASERELATION",
    ));
    match &select_of(&q).from[0] {
        TableRef::Subquery {
            alias, modifiers, ..
        } => {
            assert_eq!(alias, "sub");
            assert!(modifiers.baserelation);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn provenance_is_a_plain_identifier_outside_select() {
    // `provenance` must remain usable as a table or column name.
    let q = query_of(parse_ok("SELECT p.x FROM provenance p"));
    match &select_of(&q).from[0] {
        TableRef::Relation { name, .. } => assert_eq!(name, "provenance"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn provenance_subquery_composition() {
    // The paper's "query the provenance" example: an outer query filters a
    // PROVENANCE subquery on count > 5 AND p_origin = 'superForum'.
    let q = query_of(parse_ok(
        "SELECT text, prov_public_imports_origin FROM \
         (SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId \
          GROUP BY v1.mId) AS prov \
         WHERE count > 5 AND prov_public_imports_origin = 'superForum'",
    ));
    let s = select_of(&q);
    match &s.from[0] {
        TableRef::Subquery { query, .. } => {
            assert!(query.provenance_clause().is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------

#[test]
fn operator_precedence() {
    let e = parse_expression("1 + 2 * 3").unwrap();
    assert_eq!(
        e,
        Expr::binary(
            BinaryOp::Add,
            Expr::int(1),
            Expr::binary(BinaryOp::Mul, Expr::int(2), Expr::int(3))
        )
    );
}

#[test]
fn and_binds_tighter_than_or() {
    let e = parse_expression("a OR b AND c").unwrap();
    match e {
        Expr::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } => {
            assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::And,
                    ..
                }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn not_has_lower_precedence_than_comparison() {
    let e = parse_expression("NOT x = 1").unwrap();
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            assert!(matches!(
                *expr,
                Expr::Binary {
                    op: BinaryOp::Eq,
                    ..
                }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn comparison_operators() {
    for (sql, op) in [
        ("a = b", BinaryOp::Eq),
        ("a <> b", BinaryOp::NotEq),
        ("a != b", BinaryOp::NotEq),
        ("a < b", BinaryOp::Lt),
        ("a <= b", BinaryOp::LtEq),
        ("a > b", BinaryOp::Gt),
        ("a >= b", BinaryOp::GtEq),
    ] {
        match parse_expression(sql).unwrap() {
            Expr::Binary { op: o, .. } => assert_eq!(o, op, "{sql}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn is_null_and_is_not_null() {
    assert_eq!(
        parse_expression("x IS NULL").unwrap(),
        Expr::IsNull {
            expr: Box::new(Expr::col("x")),
            negated: false
        }
    );
    assert_eq!(
        parse_expression("x IS NOT NULL").unwrap(),
        Expr::IsNull {
            expr: Box::new(Expr::col("x")),
            negated: true
        }
    );
}

#[test]
fn is_distinct_from() {
    match parse_expression("a IS DISTINCT FROM b").unwrap() {
        Expr::IsDistinctFrom { negated, .. } => assert!(negated),
        other => panic!("unexpected {other:?}"),
    }
    match parse_expression("a IS NOT DISTINCT FROM b").unwrap() {
        Expr::IsDistinctFrom { negated, .. } => assert!(!negated),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn like_between_in() {
    assert!(matches!(
        parse_expression("t LIKE 'super%'").unwrap(),
        Expr::Like { negated: false, .. }
    ));
    assert!(matches!(
        parse_expression("t NOT LIKE '%x'").unwrap(),
        Expr::Like { negated: true, .. }
    ));
    assert!(matches!(
        parse_expression("x BETWEEN 1 AND 10").unwrap(),
        Expr::Between { negated: false, .. }
    ));
    assert!(matches!(
        parse_expression("x NOT IN (1, 2, 3)").unwrap(),
        Expr::InList { negated: true, .. }
    ));
}

#[test]
fn in_subquery_and_exists() {
    assert!(matches!(
        parse_expression("x IN (SELECT mid FROM approved)").unwrap(),
        Expr::InSubquery { negated: false, .. }
    ));
    assert!(matches!(
        parse_expression("EXISTS (SELECT 1 FROM approved)").unwrap(),
        Expr::Exists { negated: false, .. }
    ));
    // NOT EXISTS arrives via the generic NOT unary.
    match parse_expression("NOT EXISTS (SELECT 1)").unwrap() {
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            assert!(matches!(*expr, Expr::Exists { .. }));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn scalar_subquery() {
    assert!(matches!(
        parse_expression("(SELECT max(mid) FROM messages)").unwrap(),
        Expr::ScalarSubquery(_)
    ));
}

#[test]
fn case_expressions() {
    match parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END").unwrap() {
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            assert!(operand.is_none());
            assert_eq!(branches.len(), 1);
            assert!(else_branch.is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
    match parse_expression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").unwrap() {
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            assert!(operand.is_some());
            assert_eq!(branches.len(), 2);
            assert!(else_branch.is_none());
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(parse_expression("CASE END").is_err());
}

#[test]
fn function_calls() {
    assert_eq!(
        parse_expression("count(*)").unwrap(),
        Expr::Function {
            name: "count".into(),
            args: vec![],
            distinct: false,
            star: true
        }
    );
    assert!(matches!(
        parse_expression("sum(DISTINCT x)").unwrap(),
        Expr::Function { distinct: true, .. }
    ));
    match parse_expression("coalesce(a, b, 0)").unwrap() {
        Expr::Function { name, args, .. } => {
            assert_eq!(name, "coalesce");
            assert_eq!(args.len(), 3);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn cast_expression() {
    assert_eq!(
        parse_expression("CAST(x AS int)").unwrap(),
        Expr::Cast {
            expr: Box::new(Expr::col("x")),
            ty: perm_types::DataType::Int
        }
    );
}

#[test]
fn literals() {
    assert_eq!(parse_expression("42").unwrap(), Expr::int(42));
    assert_eq!(
        parse_expression("-3").unwrap(),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::int(3))
        }
    );
    assert_eq!(
        parse_expression("2.5").unwrap(),
        Expr::Literal(Value::Float(2.5))
    );
    assert_eq!(
        parse_expression("'it''s'").unwrap(),
        Expr::Literal(Value::text("it's"))
    );
    assert_eq!(
        parse_expression("TRUE").unwrap(),
        Expr::Literal(Value::Bool(true))
    );
    assert_eq!(
        parse_expression("NULL").unwrap(),
        Expr::Literal(Value::Null)
    );
}

#[test]
fn concat_operator() {
    assert!(matches!(
        parse_expression("a || b").unwrap(),
        Expr::Binary {
            op: BinaryOp::Concat,
            ..
        }
    ));
}

// ----------------------------------------------------------------------
// DDL / DML
// ----------------------------------------------------------------------

#[test]
fn create_table() {
    match parse_ok("CREATE TABLE users (uId int NOT NULL, name text)") {
        Statement::CreateTable { name, columns } => {
            assert_eq!(name, "users");
            assert_eq!(columns.len(), 2);
            assert!(columns[0].not_null);
            assert!(!columns[1].not_null);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn create_view_q2() {
    // q2 from Figure 1: CREATE VIEW v1 AS q1.
    match parse_ok(
        "CREATE VIEW v1 AS SELECT mId, text FROM messages \
         UNION SELECT mId, text FROM imports",
    ) {
        Statement::CreateView { name, query } => {
            assert_eq!(name, "v1");
            assert!(matches!(query.body, QueryBody::SetOp { .. }));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn create_table_as_provenance_is_the_eager_path() {
    match parse_ok("CREATE TABLE p AS SELECT PROVENANCE * FROM messages") {
        Statement::CreateTableAs { name, query } => {
            assert_eq!(name, "p");
            assert!(query.provenance_clause().is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn insert_rows() {
    match parse_ok("INSERT INTO users (uid, name) VALUES (1, 'Bert'), (2, 'Gert')") {
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            assert_eq!(table, "users");
            assert_eq!(columns.unwrap().len(), 2);
            assert_eq!(rows.len(), 2);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn drop_table_if_exists() {
    match parse_ok("DROP TABLE IF EXISTS t") {
        Statement::Drop {
            kind,
            name,
            if_exists,
        } => {
            assert_eq!(kind, ObjectKind::Table);
            assert_eq!(name, "t");
            assert!(if_exists);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn explain_statement() {
    assert!(matches!(
        parse_ok("EXPLAIN SELECT PROVENANCE * FROM t"),
        Statement::Explain {
            verbose: false,
            verify: false,
            ..
        }
    ));
    assert!(matches!(
        parse_ok("EXPLAIN VERBOSE SELECT * FROM t"),
        Statement::Explain {
            verbose: true,
            verify: false,
            ..
        }
    ));
}

#[test]
fn explain_verify_statement() {
    assert!(matches!(
        parse_ok("EXPLAIN VERIFY SELECT * FROM t"),
        Statement::Explain {
            verbose: false,
            verify: true,
            ..
        }
    ));
    // VERIFY must precede VERBOSE, like PostgreSQL option order.
    assert!(matches!(
        parse_ok("EXPLAIN VERIFY VERBOSE SELECT PROVENANCE * FROM t"),
        Statement::Explain {
            verbose: true,
            verify: true,
            ..
        }
    ));
    // `verify` is not reserved: still fine as an identifier.
    assert!(matches!(
        parse_ok("SELECT verify FROM t"),
        Statement::Query(_)
    ));
}

#[test]
fn delete_statement() {
    match parse_ok("DELETE FROM t WHERE x > 3") {
        Statement::Delete { table, predicate } => {
            assert_eq!(table, "t");
            assert!(predicate.is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
    match parse_ok("DELETE FROM t") {
        Statement::Delete { predicate, .. } => assert!(predicate.is_none()),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn update_statement() {
    match parse_ok("UPDATE t SET x = x + 1, y = 'z' WHERE x < 9") {
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            assert_eq!(table, "t");
            assert_eq!(assignments.len(), 2);
            assert_eq!(assignments[0].0, "x");
            assert_eq!(assignments[1].0, "y");
            assert!(predicate.is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_script_with_semicolons() {
    let stmts =
        parse_statements("CREATE TABLE t (x int); INSERT INTO t VALUES (1);; SELECT * FROM t;")
            .unwrap();
    assert_eq!(stmts.len(), 3);
}

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

#[test]
fn error_messages_carry_position() {
    let err = parse_statement("SELECT 1 +").unwrap_err();
    assert_eq!(err.kind(), "parse");
    assert!(err.message().contains("line 1"), "{err}");
}

#[test]
fn trailing_garbage_is_rejected() {
    assert!(parse_statement("SELECT 1 tail tail").is_err());
    assert!(parse_statement("SELECT * FROM t WHERE").is_err());
}

#[test]
fn unbalanced_parens_are_rejected() {
    assert!(parse_statement("SELECT (1 + 2 FROM t").is_err());
    assert!(parse_statement("SELECT * FROM (SELECT 1 AS x t").is_err());
}

// ----------------------------------------------------------------------
// The full paper query set round-trips through the parser
// ----------------------------------------------------------------------

#[test]
fn all_paper_queries_parse() {
    let queries = [
        // Figure 1.
        "SELECT mId, text FROM messages UNION SELECT mId, text FROM imports",
        "CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports",
        "SELECT count(*), text FROM v1 JOIN approved a ON (v1.mId = a.mId) GROUP BY v1.mId, text",
        // Section 2.4 examples.
        "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text \
         FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId",
        "SELECT text, p_origin FROM \
         (SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId \
          GROUP BY v1.mId) AS prov \
         WHERE count > 5 AND p_origin = 'superForum'",
        "SELECT PROVENANCE text FROM v1 BASERELATION WHERE count > 3",
    ];
    for sql in queries {
        parse_ok(sql);
    }
}
