//! Abstract syntax tree for our SQL dialect with the SQL-PLE provenance
//! extension.

use perm_types::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly provenance-) query.
    Query(Query),
    /// `CREATE TABLE name (col type [NOT NULL], …)`.
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    /// `CREATE TABLE name AS query` — the *eager* provenance computation
    /// path: materializing a `SELECT PROVENANCE` query stores provenance
    /// for later reuse (demo paper, Section 1).
    CreateTableAs { name: String, query: Query },
    /// `CREATE VIEW name AS query` (q2 of Figure 1).
    CreateView { name: String, query: Query },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)`.
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM name [WHERE predicate]`.
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    /// `UPDATE name SET col = expr, … [WHERE predicate]`.
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    /// `DROP TABLE/VIEW [IF EXISTS] name`.
    Drop {
        kind: ObjectKind,
        name: String,
        if_exists: bool,
    },
    /// `EXPLAIN [VERIFY] [VERBOSE] query` — show the physical execution
    /// plan instead of rows (`VERBOSE` adds the optimized logical tree
    /// with schema annotations; `VERIFY` runs the static plan verifier
    /// after every optimizer phase and reports each check).
    Explain {
        query: Query,
        verbose: bool,
        verify: bool,
    },
}

/// The kind of catalog object a `DROP` refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    View,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
}

/// A full query: a set-operation tree over select cores plus the trailing
/// `ORDER BY` / `LIMIT` / `OFFSET`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub body: QueryBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl Query {
    /// Wrap a bare select core into a query with no ordering or limit.
    pub fn simple(select: Select) -> Query {
        Query {
            body: QueryBody::Select(Box::new(select)),
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }

    /// The provenance clause governing this query: the clause of the
    /// outermost select core, or — for a set operation — of its *leftmost*
    /// select core. As in Perm, `SELECT PROVENANCE … UNION …` computes the
    /// provenance of the whole set operation (the paper's q1 provenance,
    /// Figure 2).
    pub fn provenance_clause(&self) -> Option<&ProvenanceClause> {
        fn leftmost(b: &QueryBody) -> Option<&ProvenanceClause> {
            match b {
                QueryBody::Select(s) => s.provenance.as_ref(),
                QueryBody::SetOp { left, .. } => leftmost(left),
            }
        }
        leftmost(&self.body)
    }
}

/// The body of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    Select(Box<Select>),
    SetOp {
        op: SetOpKind,
        /// `ALL` keeps duplicates (bag semantics).
        all: bool,
        left: Box<QueryBody>,
        right: Box<QueryBody>,
    },
}

/// `UNION`, `INTERSECT` or `EXCEPT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

/// One select core.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT PROVENANCE …` — Some when provenance computation is
    /// requested for this select.
    pub provenance: Option<ProvenanceClause>,
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM items (each possibly a join tree).
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

impl Select {
    /// An empty `SELECT` skeleton, convenient for tests and builders.
    pub fn empty() -> Select {
        Select {
            provenance: None,
            distinct: false,
            items: vec![],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
        }
    }
}

/// The SQL-PLE `PROVENANCE [ON CONTRIBUTION (…)]` clause.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenanceClause {
    /// `None` means the session default (INFLUENCE in Perm).
    pub semantics: Option<ContributionSemantics>,
}

/// Contribution semantics selectable via `ON CONTRIBUTION (…)`.
///
/// The demo paper names `INFLUENCE` (Why-provenance, Perm's PI-CS) and
/// "several types of Where-provenance as keyword COPY"; we additionally
/// expose Cui-Widom lineage as `LINEAGE` (the demo paper's Section 1 cites
/// it as one of the prominent contribution definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContributionSemantics {
    /// PI-CS: the witnesses that influenced the existence of the tuple.
    Influence,
    /// Copy-CS: only the base values actually copied to the output.
    Copy(CopyMode),
    /// Cui-Widom lineage (set semantics; difference keeps the full right
    /// side as contributing).
    Lineage,
}

/// Variants of Where-provenance (`COPY`): whether a base tuple must have
/// *all* its attributes copied to count, or any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CopyMode {
    /// Keep base tuples that copied at least one attribute (Perm's
    /// `COPY PARTIAL`), the default.
    #[default]
    Partial,
    /// Keep base tuples only if every attribute was copied
    /// (`COPY COMPLETE`).
    Complete,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base relation or view reference.
    Relation {
        name: String,
        alias: Option<String>,
        /// `AS alias(c1, c2, …)` column aliases (may rename a prefix of
        /// the columns, as in standard SQL).
        column_aliases: Option<Vec<String>>,
        modifiers: FromModifiers,
    },
    /// A derived table `(query) AS alias`.
    Subquery {
        query: Box<Query>,
        alias: String,
        /// `AS alias(c1, c2, …)` column aliases.
        column_aliases: Option<Vec<String>>,
        modifiers: FromModifiers,
    },
    /// An explicit join.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// `ON` condition; `None` only for `CROSS JOIN`.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// The alias this item is visible under (`alias`, else relation name).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Relation { name, alias, .. } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// The SQL-PLE FROM-item modifiers of Section 2.4.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FromModifiers {
    /// `BASERELATION`: treat this view/subquery like a base relation —
    /// rewrite rules are not applied below it; its output attributes are
    /// duplicated as its provenance.
    pub baserelation: bool,
    /// `PROVENANCE (a, b, …)`: the listed attributes of this item are
    /// externally produced provenance and are propagated untouched.
    pub provenance_attrs: Option<Vec<String>>,
}

impl FromModifiers {
    pub fn none() -> FromModifiers {
        FromModifiers::default()
    }

    pub fn is_plain(&self) -> bool {
        !self.baserelation && self.provenance_attrs.is_none()
    }
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Possibly qualified column reference.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `a IS [NOT] DISTINCT FROM b` (NULL-safe comparison).
    IsDistinctFrom {
        left: Box<Expr>,
        right: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)` — a sublink (EDBT'09 rewrites).
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    /// A scalar subquery `(SELECT …)` used as a value.
    ScalarSubquery(Box<Query>),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    /// Function call: scalar (`upper(x)`) or aggregate
    /// (`count(*)`, `sum(DISTINCT x)`).
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        /// `count(*)`.
        star: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<Expr>,
        ty: DataType,
    },
}

impl Expr {
    /// Convenience: unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience: qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience: build `left op right`.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
    Plus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_simple_has_no_ordering() {
        let q = Query::simple(Select::empty());
        assert!(q.order_by.is_empty());
        assert!(q.limit.is_none());
        assert!(q.provenance_clause().is_none());
    }

    #[test]
    fn provenance_clause_surfaces_from_select_core() {
        let mut s = Select::empty();
        s.provenance = Some(ProvenanceClause {
            semantics: Some(ContributionSemantics::Influence),
        });
        let q = Query::simple(s);
        assert_eq!(
            q.provenance_clause().unwrap().semantics,
            Some(ContributionSemantics::Influence)
        );
    }

    #[test]
    fn binding_names() {
        let r = TableRef::Relation {
            name: "messages".into(),
            alias: Some("m".into()),
            column_aliases: None,
            modifiers: FromModifiers::none(),
        };
        assert_eq!(r.binding_name(), Some("m"));
        let r2 = TableRef::Relation {
            name: "users".into(),
            alias: None,
            column_aliases: None,
            modifiers: FromModifiers::none(),
        };
        assert_eq!(r2.binding_name(), Some("users"));
    }

    #[test]
    fn from_modifiers_plain_check() {
        assert!(FromModifiers::none().is_plain());
        let m = FromModifiers {
            baserelation: true,
            provenance_attrs: None,
        };
        assert!(!m.is_plain());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::binary(BinaryOp::Eq, Expr::qcol("v1", "mid"), Expr::int(4));
        match e {
            Expr::Binary { op, left, right } => {
                assert_eq!(op, BinaryOp::Eq);
                assert_eq!(
                    *left,
                    Expr::Column {
                        qualifier: Some("v1".into()),
                        name: "mid".into()
                    }
                );
                assert_eq!(*right, Expr::Literal(Value::Int(4)));
            }
            _ => panic!("expected binary"),
        }
    }
}
