//! Recursive-descent parser for the SQL dialect with SQL-PLE.
//!
//! Expression parsing uses classic precedence climbing. Keywords are matched
//! contextually against identifier tokens, so the grammar stays extensible;
//! a small reserved-word list keeps implicit aliases from swallowing clause
//! keywords (`FROM x BASERELATION` must not read `BASERELATION` as an
//! alias).

use perm_types::{DataType, PermError, Result, Value};

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.error("expected ';' between statements"));
        }
    }
}

/// Parse a standalone scalar expression (used by tests and tools).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Words that cannot be used as an *implicit* (un-`AS`ed) alias or swallow
/// the start of the next clause.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "offset",
    "union",
    "intersect",
    "except",
    "on",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "cross",
    "natural",
    "as",
    "and",
    "or",
    "not",
    "in",
    "is",
    "like",
    "between",
    "case",
    "when",
    "then",
    "else",
    "end",
    "exists",
    "distinct",
    "all",
    "null",
    "true",
    "false",
    "cast",
    "provenance",
    "baserelation",
    "asc",
    "desc",
    "values",
    "by",
    "into",
    "create",
    "insert",
    "drop",
    "table",
    "view",
    "explain",
    "using",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(word))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    // ------------------------------------------------------------------
    // Cursor helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{kind}'")))
        }
    }

    fn check_keyword(&self, kw: &str) -> bool {
        self.peek_kind().is_keyword(kw)
    }

    fn check_keyword_ahead(&self, n: usize, kw: &str) -> bool {
        self.peek_ahead(n).is_keyword(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.check_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", kw.to_uppercase())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found '{other}'"))),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn error(&self, msg: impl Into<String>) -> PermError {
        let t = self.peek();
        PermError::Parse(format!(
            "{} at line {}, column {} (near '{}')",
            msg.into(),
            t.line,
            t.col,
            t.kind
        ))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.check_keyword("create") {
            return self.parse_create();
        }
        if self.check_keyword("insert") {
            return self.parse_insert();
        }
        if self.check_keyword("drop") {
            return self.parse_drop();
        }
        if self.check_keyword("delete") {
            return self.parse_delete();
        }
        if self.check_keyword("update") {
            return self.parse_update();
        }
        if self.eat_keyword("explain") {
            let verify = self.eat_keyword("verify");
            let verbose = self.eat_keyword("verbose");
            return Ok(Statement::Explain {
                query: self.parse_query()?,
                verbose,
                verify,
            });
        }
        Ok(Statement::Query(self.parse_query()?))
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let predicate = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_keyword("update")?;
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_keyword("create")?;
        if self.eat_keyword("view") {
            let name = self.expect_ident()?;
            self.expect_keyword("as")?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateView { name, query });
        }
        self.expect_keyword("table")?;
        let name = self.expect_ident()?;
        if self.eat_keyword("as") {
            let query = self.parse_query()?;
            return Ok(Statement::CreateTableAs { name, query });
        }
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident()?;
            let ty_name = self.expect_ident()?;
            let ty = DataType::parse(&ty_name)?;
            let mut not_null = false;
            if self.eat_keyword("not") {
                self.expect_keyword("null")?;
                not_null = true;
            }
            columns.push(ColumnDef {
                name: col_name,
                ty,
                not_null,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let columns = if self.check(&TokenKind::LParen) {
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_keyword("drop")?;
        let kind = if self.eat_keyword("view") {
            ObjectKind::View
        } else {
            self.expect_keyword("table")?;
            ObjectKind::Table
        };
        let mut if_exists = false;
        if self.eat_keyword("if") {
            self.expect_keyword("exists")?;
            if_exists = true;
        }
        let name = self.expect_ident()?;
        Ok(Statement::Drop {
            kind,
            name,
            if_exists,
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_query_body(0)?;
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_keyword("limit") {
            limit = Some(self.parse_u64()?);
        }
        if self.eat_keyword("offset") {
            offset = Some(self.parse_u64()?);
        }
        Ok(Query {
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.peek_kind().clone() {
            TokenKind::IntLit(i) if i >= 0 => {
                self.advance();
                Ok(i as u64)
            }
            other => Err(self.error(format!("expected non-negative integer, found '{other}'"))),
        }
    }

    /// Set-operation precedence: `INTERSECT` (2) binds tighter than `UNION`
    /// and `EXCEPT` (1), as in standard SQL.
    fn parse_query_body(&mut self, min_prec: u8) -> Result<QueryBody> {
        let mut left = self.parse_query_primary()?;
        loop {
            let (op, prec) = if self.check_keyword("union") {
                (SetOpKind::Union, 1)
            } else if self.check_keyword("except") {
                (SetOpKind::Except, 1)
            } else if self.check_keyword("intersect") {
                (SetOpKind::Intersect, 2)
            } else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let all = if self.eat_keyword("all") {
                true
            } else {
                self.eat_keyword("distinct");
                false
            };
            let right = self.parse_query_body(prec + 1)?;
            left = QueryBody::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_query_primary(&mut self) -> Result<QueryBody> {
        if self.check(&TokenKind::LParen) {
            self.advance();
            let q = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            if !q.order_by.is_empty() || q.limit.is_some() || q.offset.is_some() {
                return Err(self.error(
                    "ORDER BY / LIMIT inside a set-operation operand is not supported; \
                     apply it to the whole query",
                ));
            }
            return Ok(q.body);
        }
        Ok(QueryBody::Select(Box::new(self.parse_select_core()?)))
    }

    fn parse_select_core(&mut self) -> Result<Select> {
        self.expect_keyword("select")?;

        // SQL-PLE: SELECT PROVENANCE [ON CONTRIBUTION (semantics)] ...
        let provenance = if self.eat_keyword("provenance") {
            let semantics =
                if self.check_keyword("on") && self.check_keyword_ahead(1, "contribution") {
                    self.advance(); // on
                    self.advance(); // contribution
                    self.expect(&TokenKind::LParen)?;
                    let sem = self.parse_contribution_semantics()?;
                    self.expect(&TokenKind::RParen)?;
                    Some(sem)
                } else {
                    None
                };
            Some(ProvenanceClause { semantics })
        } else {
            None
        };

        let distinct = if self.eat_keyword("distinct") {
            true
        } else {
            self.eat_keyword("all");
            false
        };

        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        if self.eat_keyword("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let where_clause = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select {
            provenance,
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn parse_contribution_semantics(&mut self) -> Result<ContributionSemantics> {
        if self.eat_keyword("influence") {
            Ok(ContributionSemantics::Influence)
        } else if self.eat_keyword("lineage") {
            Ok(ContributionSemantics::Lineage)
        } else if self.eat_keyword("copy") {
            let mode = if self.eat_keyword("complete") {
                CopyMode::Complete
            } else {
                self.eat_keyword("partial");
                CopyMode::Partial
            };
            Ok(ContributionSemantics::Copy(mode))
        } else {
            Err(self.error(
                "expected contribution semantics: INFLUENCE, COPY [PARTIAL|COMPLETE] or LINEAGE",
            ))
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if *self.peek_ahead(1) == TokenKind::Dot && *self.peek_ahead(2) == TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("as") {
            return Ok(Some(self.expect_ident()?));
        }
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if !is_reserved(&name) {
                self.advance();
                return Ok(Some(name));
            }
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // FROM items
    // ------------------------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_keyword("cross") {
                self.expect_keyword("join")?;
                JoinKind::Cross
            } else if self.eat_keyword("inner") {
                self.expect_keyword("join")?;
                JoinKind::Inner
            } else if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::Left
            } else if self.eat_keyword("right") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::Right
            } else if self.eat_keyword("full") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::Full
            } else if self.eat_keyword("join") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_keyword("on")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.check(&TokenKind::LParen) {
            // Subquery or parenthesized join tree. A subquery starts with
            // SELECT, or with '(' that eventually reaches SELECT.
            if self.starts_subquery() {
                self.advance(); // (
                let query = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                let alias = self.parse_table_alias(true)?;
                let column_aliases = self.parse_column_alias_list()?;
                let modifiers = self.parse_from_modifiers()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                    column_aliases,
                    modifiers,
                });
            }
            self.advance(); // (
            let inner = self.parse_table_ref()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.expect_ident()?;
        let alias = self.parse_opt_alias()?;
        let column_aliases = if alias.is_some() {
            self.parse_column_alias_list()?
        } else {
            None
        };
        let modifiers = self.parse_from_modifiers()?;
        Ok(TableRef::Relation {
            name,
            alias,
            column_aliases,
            modifiers,
        })
    }

    /// Optional `(c1, c2, …)` column alias list after a table alias.
    fn parse_column_alias_list(&mut self) -> Result<Option<Vec<String>>> {
        if !self.check(&TokenKind::LParen) {
            return Ok(None);
        }
        self.advance();
        let mut cols = Vec::new();
        loop {
            cols.push(self.expect_ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Some(cols))
    }

    /// Look ahead over nested '(' to see if a parenthesized FROM item is a
    /// subquery (`(SELECT …)`), as opposed to a parenthesized join.
    fn starts_subquery(&self) -> bool {
        let mut i = 0;
        while *self.peek_ahead(i) == TokenKind::LParen {
            i += 1;
        }
        self.peek_ahead(i).is_keyword("select")
    }

    fn parse_table_alias(&mut self, required: bool) -> Result<String> {
        match self.parse_opt_alias()? {
            Some(a) => Ok(a),
            None if required => Err(self.error("subquery in FROM must have an alias")),
            None => Ok(String::new()),
        }
    }

    /// SQL-PLE FROM-item modifiers: `BASERELATION` and `PROVENANCE (attrs)`.
    fn parse_from_modifiers(&mut self) -> Result<FromModifiers> {
        let mut m = FromModifiers::none();
        loop {
            if self.eat_keyword("baserelation") {
                m.baserelation = true;
            } else if self.check_keyword("provenance") {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let mut attrs = Vec::new();
                loop {
                    attrs.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                m.provenance_attrs = Some(attrs);
            } else {
                break;
            }
        }
        Ok(m)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL / IS [NOT] DISTINCT FROM
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            if self.eat_keyword("null") {
                return Ok(Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                });
            }
            self.expect_keyword("distinct")?;
            self.expect_keyword("from")?;
            let right = self.parse_additive()?;
            return Ok(Expr::IsDistinctFrom {
                left: Box::new(left),
                right: Box::new(right),
                negated: !negated, // IS DISTINCT FROM <=> negated NULL-safe eq
            });
        }

        // [NOT] LIKE / BETWEEN / IN
        let negated = if self.check_keyword("not")
            && (self.check_keyword_ahead(1, "like")
                || self.check_keyword_ahead(1, "between")
                || self.check_keyword_ahead(1, "in"))
        {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_keyword("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("in") {
            self.expect(&TokenKind::LParen)?;
            if self.check_keyword("select") {
                let query = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected LIKE, BETWEEN or IN after NOT"));
        }

        let op = match self.peek_kind() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::Neq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&TokenKind::Plus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Plus,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        // Literals.
        match self.peek_kind().clone() {
            TokenKind::IntLit(i) => {
                self.advance();
                return Ok(Expr::Literal(Value::Int(i)));
            }
            TokenKind::FloatLit(f) => {
                self.advance();
                return Ok(Expr::Literal(Value::Float(f)));
            }
            TokenKind::StringLit(s) => {
                self.advance();
                return Ok(Expr::Literal(Value::text(s)));
            }
            _ => {}
        }
        if self.eat_keyword("true") {
            return Ok(Expr::Literal(Value::Bool(true)));
        }
        if self.eat_keyword("false") {
            return Ok(Expr::Literal(Value::Bool(false)));
        }
        if self.eat_keyword("null") {
            return Ok(Expr::Literal(Value::Null));
        }

        // CASE.
        if self.eat_keyword("case") {
            return self.parse_case();
        }

        // CAST(expr AS type).
        if self.check_keyword("cast") && *self.peek_ahead(1) == TokenKind::LParen {
            self.advance();
            self.advance();
            let expr = self.parse_expr()?;
            self.expect_keyword("as")?;
            let ty_name = self.expect_ident()?;
            let ty = DataType::parse(&ty_name)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Cast {
                expr: Box::new(expr),
                ty,
            });
        }

        // EXISTS (subquery).
        if self.check_keyword("exists") && *self.peek_ahead(1) == TokenKind::LParen {
            self.advance();
            self.advance();
            let query = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(query),
                negated: false,
            });
        }

        // Parenthesized expression or scalar subquery.
        if self.check(&TokenKind::LParen) {
            if self.starts_subquery() {
                self.advance();
                let query = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::ScalarSubquery(Box::new(query)));
            }
            self.advance();
            let e = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }

        // Function call or column reference.
        let name = self.expect_ident()?;
        if self.check(&TokenKind::LParen) {
            self.advance();
            if self.eat(&TokenKind::Star) {
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Function {
                    name,
                    args: vec![],
                    distinct: false,
                    star: true,
                });
            }
            let distinct = self.eat_keyword("distinct");
            let mut args = Vec::new();
            if !self.check(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name,
                args,
                distinct,
                star: false,
            });
        }
        if self.eat(&TokenKind::Dot) {
            let col = self.expect_ident()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if !self.check_keyword("when") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

#[cfg(test)]
mod tests;
