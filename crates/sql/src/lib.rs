//! # perm-sql
//!
//! Hand-written SQL lexer and recursive-descent parser for the Perm
//! provenance management system, including the **SQL-PLE** provenance
//! language extension of the SIGMOD'09 demo paper (Section 2.4):
//!
//! * `SELECT PROVENANCE …` — compute the provenance of the query.
//! * `SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE | COPY | LINEAGE) …` —
//!   choose the contribution semantics.
//! * `FROM x BASERELATION` — stop the rewrite at `x` and treat its output
//!   as base tuples.
//! * `FROM x PROVENANCE (a, b, …)` — declare existing attributes of `x` as
//!   (externally produced) provenance attributes to be propagated as-is.
//!
//! All ordinary SQL features remain available and composable with the
//! extension, as the paper requires ("a user cannot just receive provenance
//! information, but also query provenance information, store it as a view,
//! etc.").

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use parser::{parse_expression, parse_statement, parse_statements};
