//! Token stream produced by the lexer.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// The token kinds of our SQL dialect.
///
/// Keywords are *not* distinguished at the lexical level: SQL keywords are
/// context-sensitive (e.g. `PROVENANCE` is a keyword after `SELECT` and an
/// ordinary alias elsewhere), so the parser matches identifier text
/// case-insensitively where it expects a keyword.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier, stored lower-cased (PostgreSQL folding),
    /// or quoted identifier stored verbatim.
    Ident(String),
    /// String literal (single quotes, `''` escape already resolved).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),

    // Punctuation and operators.
    Comma,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`.
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this token is the identifier `kw` (case-insensitive match on
    /// unquoted identifiers).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::IntLit(i) => write!(f, "{i}"),
            TokenKind::FloatLit(x) => write!(f, "{x}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Neq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Concat => f.write_str("||"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = TokenKind::Ident("provenance".into());
        assert!(t.is_keyword("PROVENANCE"));
        assert!(t.is_keyword("Provenance"));
        assert!(!t.is_keyword("baserelation"));
        assert!(!TokenKind::Comma.is_keyword("select"));
    }

    #[test]
    fn display_punctuation() {
        assert_eq!(TokenKind::Neq.to_string(), "<>");
        assert_eq!(TokenKind::Concat.to_string(), "||");
        assert_eq!(TokenKind::StringLit("a".into()).to_string(), "'a'");
    }
}
