//! The SQL lexer.
//!
//! Handles unquoted identifiers (folded to lower case, as PostgreSQL does),
//! `"quoted"` identifiers, `'string'` literals with `''` escapes, integer
//! and float literals, operators, `--` line comments and `/* */` block
//! comments.

use perm_types::{PermError, Result};

use crate::token::{Token, TokenKind};

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> PermError {
        PermError::Parse(format!(
            "{} at line {}, column {}",
            msg.into(),
            self.line,
            self.col
        ))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                'a'..='z' | 'A'..='Z' | '_' => self.lex_ident(),
                '0'..='9' => self.lex_number()?,
                '\'' => self.lex_string()?,
                '"' => self.lex_quoted_ident()?,
                '.' => {
                    // `.5` style float literal.
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number()?
                    } else {
                        self.bump();
                        TokenKind::Dot
                    }
                }
                ',' => self.single(TokenKind::Comma),
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                ';' => self.single(TokenKind::Semicolon),
                '*' => self.single(TokenKind::Star),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '/' => self.single(TokenKind::Slash),
                '%' => self.single(TokenKind::Percent),
                '=' => self.single(TokenKind::Eq),
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            TokenKind::LtEq
                        }
                        Some('>') => {
                            self.bump();
                            TokenKind::Neq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Neq
                    } else {
                        return Err(self.error("unexpected '!'"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        TokenKind::Concat
                    } else {
                        return Err(self.error("unexpected '|' (did you mean '||'?)"));
                    }
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            };
            out.push(Token { kind, line, col });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c.to_ascii_lowercase());
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }

    fn lex_quoted_ident(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => {
                    if self.peek() == Some('"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Ok(TokenKind::Ident(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated quoted identifier")),
            }
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::StringLit(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' if !saw_dot && !saw_exp => {
                    // Only treat as decimal point when followed by a digit or
                    // we've seen digits already (avoid eating `1.foo`).
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        saw_dot = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                'e' | 'E' if !saw_exp => {
                    let next = self.peek2();
                    let has_exp_digits = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some('+') | Some('-') => self
                            .chars
                            .get(self.pos + 2)
                            .is_some_and(|c| c.is_ascii_digit()),
                        _ => false,
                    };
                    if has_exp_digits {
                        saw_exp = true;
                        self.bump(); // e
                        if matches!(self.peek(), Some('+') | Some('-')) {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|_| self.error(format!("invalid float literal '{text}'")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|_| self.error(format!("integer literal '{text}' out of range")))
        }
    }

    // Diagnostic accessor kept for error-reporting call sites and tests.
    #[allow(dead_code)]
    fn src(&self) -> &str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_select_tokens() {
        let ks = kinds("SELECT mId, text FROM messages;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("mid".into()),
                TokenKind::Comma,
                TokenKind::Ident("text".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("messages".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers_fold_to_lowercase_quoted_preserved() {
        assert_eq!(kinds("FooBar")[0], TokenKind::Ident("foobar".into()));
        assert_eq!(kinds("\"FooBar\"")[0], TokenKind::Ident("FooBar".into()));
        assert_eq!(
            kinds("\"a\"\"b\"")[0],
            TokenKind::Ident("a\"b".into()),
            "doubled quote escape"
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::StringLit("it's".into()));
        assert_eq!(
            kinds("'superForum'")[0],
            TokenKind::StringLit("superForum".into())
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("3.5")[0], TokenKind::FloatLit(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::FloatLit(0.25));
        assert_eq!(kinds(".5")[0], TokenKind::FloatLit(0.5));
    }

    #[test]
    fn dot_after_number_is_member_access_when_not_digit() {
        // `t1.c` after an integer-looking alias: "1.foo" lexes as 1 . foo
        let ks = kinds("1.foo");
        assert_eq!(
            ks[..3],
            [
                TokenKind::IntLit(1),
                TokenKind::Dot,
                TokenKind::Ident("foo".into())
            ]
        );
    }

    #[test]
    fn operators() {
        let ks = kinds("a <= b <> c != d || e >= f");
        assert!(ks.contains(&TokenKind::LtEq));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Neq).count(), 2);
        assert!(ks.contains(&TokenKind::Concat));
        assert!(ks.contains(&TokenKind::GtEq));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- comment to end of line\n 1 /* block\ncomment */ + 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::IntLit(1),
                TokenKind::Plus,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("select\n  @").unwrap_err();
        assert!(err.message().contains("line 2"), "{err}");
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn eof_only_for_empty_input() {
        assert_eq!(kinds("   "), vec![TokenKind::Eof]);
    }
}
