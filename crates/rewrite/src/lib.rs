//! # perm-rewrite
//!
//! **The paper's contribution**: provenance computation through query
//! rewriting (Glavic & Alonso, SIGMOD 2009 demo; rules from ICDE 2009,
//! sublinks from EDBT 2009).
//!
//! Given a bound query tree `q`, the [`Rewriter`] produces a query tree
//! `q+` that computes the *provenance* of `q`: the original result tuples
//! extended with the contributing base-relation tuples as additional
//! ("provenance") attributes named `prov_<schema>_<relation>_<attribute>`.
//! Because `q+` is an ordinary relational query, it is optimized and
//! executed by the ordinary planner/executor, and its result can be
//! queried, stored and combined with normal data — the central point of
//! the Perm system.
//!
//! Supported, per the demo paper's feature list:
//!
//! * **Contribution semantics** ([`options::Semantics`]): `INFLUENCE`
//!   (PI-CS), `COPY [PARTIAL|COMPLETE]` (Copy-CS / Where-provenance) and
//!   `LINEAGE` (Cui-Widom).
//! * **Alternative rewrite strategies** with heuristic and cost-based
//!   selection ([`options::StrategyMode`], [`cost`]).
//! * **External provenance**: `PROVENANCE (attrs)` FROM-items and tables
//!   with recorded provenance columns propagate foreign provenance
//!   untouched.
//! * **`BASERELATION`**: stop the rewrite at a view/subquery.
//! * **Nested subqueries**: uncorrelated `[NOT] IN` / `[NOT] EXISTS`
//!   sublinks ([`sublink`]).

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod copy;
pub mod cost;
pub mod options;
pub mod provattr;
pub mod rules;
pub mod setops;
pub mod sublink;

use std::cell::Cell;

use perm_algebra::catalog::{ProvenancePlan, ProvenanceTransform};
use perm_algebra::plan::LogicalPlan;
use perm_types::Result;

pub use cost::{CardinalityEstimator, FixedCardinalities, UnknownCardinality};
pub use options::{
    ContributionSemantics, CopyMode, RewriteOptions, Semantics, StrategyMode, UnionStrategy,
};
pub use provattr::{is_provenance_name, provenance_name, ProvAttrInfo};
pub use rules::{Ctx, Rewritten};

/// The provenance rewriter (the "Provenance Rewriter" box of the paper's
/// Figure 3). Plugs into the analyzer through
/// [`perm_algebra::catalog::ProvenanceTransform`].
pub struct Rewriter<'a> {
    options: RewriteOptions,
    estimator: &'a dyn CardinalityEstimator,
}

impl<'a> Rewriter<'a> {
    pub fn new(options: RewriteOptions, estimator: &'a dyn CardinalityEstimator) -> Rewriter<'a> {
        Rewriter { options, estimator }
    }

    /// The rewriter with default options and no cardinality knowledge.
    pub fn basic() -> Rewriter<'static> {
        Rewriter {
            options: RewriteOptions::default(),
            estimator: &UnknownCardinality,
        }
    }

    pub fn options(&self) -> &RewriteOptions {
        &self.options
    }

    /// Rewrite `plan` into its provenance query under `semantics` (or the
    /// session default), returning the plan plus full provenance-attribute
    /// metadata.
    pub fn rewrite(
        &self,
        plan: &LogicalPlan,
        semantics: Option<ContributionSemantics>,
    ) -> Result<Rewritten> {
        let sem = Semantics::from_clause(semantics, self.options.default_semantics);
        let ctx = Ctx {
            semantics: sem,
            options: &self.options,
            estimator: self.estimator,
            groups: Cell::new(0),
        };
        let rewritten = ctx.rewrite(plan)?.normalized();
        Ok(match sem {
            Semantics::Copy(mode) => copy::apply_copy_mode(rewritten, mode),
            _ => rewritten,
        })
    }
}

impl ProvenanceTransform for Rewriter<'_> {
    fn rewrite_provenance(
        &self,
        plan: LogicalPlan,
        semantics: Option<ContributionSemantics>,
    ) -> Result<ProvenancePlan> {
        let rw = self.rewrite(&plan, semantics)?;
        Ok(ProvenancePlan {
            plan: rw.plan,
            prov_attrs: rw.prov,
        })
    }
}

#[cfg(test)]
mod tests;
