//! Provenance attribute descriptors and the Perm naming scheme.

use perm_types::Column;

/// Default schema name used in provenance attribute names. Perm names
/// provenance attributes `prov_<schema>_<relation>_<attribute>`; PostgreSQL's
/// default schema is `public`, which is how the paper's Figure 4 sample
/// output shows `prov_public_s_i` and `prov_public_r_i`.
pub const DEFAULT_SCHEMA: &str = "public";

/// Metadata about one provenance attribute of a rewritten plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvAttrInfo {
    /// The output column (name follows the Perm scheme, always nullable —
    /// non-contributing sides are padded with NULL).
    pub column: Column,
    /// The base relation (or BASERELATION/external FROM-item) the attribute
    /// derives from.
    pub relation: String,
    /// The source attribute's name within that relation.
    pub attribute: String,
    /// Relation-*instance* id: all attributes produced by one base-access
    /// (or boundary) share a group. Distinguishes the two sides of a
    /// self-join, which Copy-CS `COMPLETE` mode needs.
    pub group: usize,
}

impl ProvAttrInfo {
    /// Build the provenance attribute for `source` of relation `relation`.
    pub fn for_attribute(relation: &str, source: &Column, group: usize) -> ProvAttrInfo {
        let column = Column::new(provenance_name(relation, &source.name), source.ty);
        ProvAttrInfo {
            column,
            relation: relation.to_string(),
            attribute: source.name.clone(),
            group,
        }
    }

    /// An external provenance attribute keeps its existing column name
    /// (the rewrite rules "propagate provenance information that was not
    /// produced by Perm" untouched — paper §2.2).
    pub fn external(relation: &str, source: &Column, group: usize) -> ProvAttrInfo {
        ProvAttrInfo {
            column: source.clone().with_qualifier(relation).nullable_external(),
            relation: relation.to_string(),
            attribute: source.name.clone(),
            group,
        }
    }
}

/// The Perm provenance attribute name:
/// `prov_<schema>_<relation>_<attribute>` with the default `public` schema.
pub fn provenance_name(relation: &str, attribute: &str) -> String {
    format!(
        "prov_{DEFAULT_SCHEMA}_{}_{}",
        relation.to_ascii_lowercase(),
        attribute.to_ascii_lowercase()
    )
}

/// True if `name` looks like a Perm-generated provenance attribute.
pub fn is_provenance_name(name: &str) -> bool {
    name.starts_with("prov_")
}

/// Small extension to mark external columns nullable (padding on
/// non-contributing branches may introduce NULLs).
trait NullableExt {
    fn nullable_external(self) -> Column;
}

impl NullableExt for Column {
    fn nullable_external(mut self) -> Column {
        self.nullable = true;
        self.qualifier = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_types::DataType;

    #[test]
    fn naming_matches_figure_4() {
        // Figure 4 marker 5 shows columns `prov_public_s_i` and
        // `prov_public_r_i` for `SELECT PROVENANCE … FROM s JOIN r`.
        assert_eq!(provenance_name("s", "i"), "prov_public_s_i");
        assert_eq!(provenance_name("R", "I"), "prov_public_r_i");
    }

    #[test]
    fn for_attribute_builds_nullable_prov_column() {
        let src = Column::new("mid", DataType::Int)
            .not_null()
            .with_qualifier("m");
        let p = ProvAttrInfo::for_attribute("messages", &src, 0);
        assert_eq!(p.column.name, "prov_public_messages_mid");
        assert!(p.column.nullable);
        assert_eq!(p.relation, "messages");
        assert_eq!(p.attribute, "mid");
    }

    #[test]
    fn external_keeps_original_name() {
        let src = Column::new("src_origin", DataType::Text);
        let p = ProvAttrInfo::external("imported", &src, 1);
        assert_eq!(p.column.name, "src_origin");
        assert!(p.column.nullable);
    }

    #[test]
    fn provenance_name_detection() {
        assert!(is_provenance_name("prov_public_messages_mid"));
        assert!(!is_provenance_name("mid"));
    }
}
