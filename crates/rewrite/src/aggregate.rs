//! Provenance rewrite rule for aggregation.
//!
//! PI-CS defines every input tuple of a group as a witness of that group's
//! result tuple. The rewrite therefore **joins the original aggregate
//! output back** to the rewritten input on the group-by expressions, using
//! NULL-safe equality (`IS NOT DISTINCT FROM`) because `GROUP BY` groups
//! NULLs together:
//!
//! ```text
//! (α_{G,agg}(T))+ = Π_{A, P(T+)}( α_{G,agg}(T) ⟕_{G ≡ G(T+)} T+ )
//! ```
//!
//! A global aggregate (no GROUP BY) joins its single result row to every
//! input tuple (`ON true`); the outer join keeps the `count(*) = 0` row of
//! an empty input with NULL provenance.

use std::collections::BTreeSet;

use perm_types::{Result, Schema, Value};

use perm_algebra::expr::{AggCall, ScalarExpr};
use perm_algebra::plan::{JoinType, LogicalPlan};

use crate::rules::{expr_copy_set, Ctx, Rewritten};

pub fn rewrite_aggregate(
    ctx: &Ctx,
    original: &LogicalPlan,
    input: &LogicalPlan,
    group_by: &[ScalarExpr],
    aggs: &[AggCall],
    schema: &Schema,
) -> Result<Rewritten> {
    let rt = ctx.rewrite(input)?.normalized();
    let n_out = schema.len();
    let n_in = rt.n_orig();
    let p = rt.prov.len();

    // Join condition: group column i of the aggregate output (position i —
    // group columns come first) must be NULL-safe-equal to the group
    // expression evaluated over the rewritten input (shifted by n_out).
    let cond = if group_by.is_empty() {
        ScalarExpr::Literal(Value::Bool(true))
    } else {
        let preds: Vec<ScalarExpr> = group_by
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let right = rt.remap(g).map_columns(&|c| c + n_out);
                ScalarExpr::not_distinct(ScalarExpr::Column(i), right)
            })
            .collect();
        ScalarExpr::conjunction(preds)
    };

    // Copy map: group columns copy whatever their group expression copied;
    // aggregate results are computed values and copy nothing. (`min`/`max`
    // do return an input value, but not one attributable to the *aligned*
    // witness row, so Copy-CS conservatively drops them.)
    let mut copy_sets: Vec<BTreeSet<usize>> = group_by
        .iter()
        .map(|g| expr_copy_set(&rt.remap(g), &rt.copy_sets))
        .collect();

    let join = LogicalPlan::join(original.clone(), rt.plan, JoinType::Left, Some(cond))?;
    // Join schema: [aggregate output 0..n_out][T+ n_out..n_out+n_in+p].
    let positions: Vec<usize> = (0..n_out).chain(n_out + n_in..n_out + n_in + p).collect();
    let plan = LogicalPlan::project_positions(join, &positions);
    copy_sets.resize(n_out, BTreeSet::new());
    debug_assert_eq!(copy_sets.len(), n_out);
    let _ = aggs;

    Ok(Rewritten {
        plan,
        orig: (0..n_out).collect(),
        prov: (n_out..n_out + p).collect(),
        attrs: rt.attrs,
        copy_sets,
    })
}
