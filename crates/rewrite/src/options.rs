//! Rewrite options: contribution semantics and strategy selection.

pub use perm_sql::{ContributionSemantics, CopyMode};

/// The contribution semantics the rewriter computes, resolved from the
/// SQL-PLE `ON CONTRIBUTION (…)` clause or the session default.
///
/// * `Influence` — Perm's PI-CS (Why-provenance-flavoured): every base
///   tuple that influenced the existence of a result tuple is a witness.
/// * `Copy` — Copy-CS (Where-provenance-flavoured): provenance attributes
///   keep only values actually **copied** into the result; non-copied
///   attributes are NULLed (per attribute for `Partial`, per relation for
///   `Complete`).
/// * `Lineage` — Cui-Widom lineage: like Influence, except set difference
///   additionally reports the entire right-hand input as contributing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    Influence,
    Copy(CopyMode),
    Lineage,
}

impl Semantics {
    pub fn from_clause(
        clause: Option<ContributionSemantics>,
        default: ContributionSemantics,
    ) -> Semantics {
        match clause.unwrap_or(default) {
            ContributionSemantics::Influence => Semantics::Influence,
            ContributionSemantics::Copy(m) => Semantics::Copy(m),
            ContributionSemantics::Lineage => Semantics::Lineage,
        }
    }
}

/// The two rewrite rules for set operations where the paper notes "for some
/// operators there is more than one rewrite rule" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionStrategy {
    /// Rewrite each branch and UNION ALL them, padding the other branch's
    /// provenance attributes with NULL. One pass over each input.
    PaddedUnion,
    /// Compute the original set operation, then join its result back to
    /// the padded union of the rewritten branches on the result attributes
    /// (NULL-safe). Profitable only when the original result is much
    /// smaller than its inputs and already materialized.
    JoinBack,
}

/// How a strategy is chosen when several rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyMode {
    /// A fixed rule of thumb (Perm's "heuristic solution").
    Heuristic,
    /// Pick the cheaper rewrite using cardinality estimates (Perm's
    /// "cost-based solution").
    CostBased,
    /// Force one strategy (ablation benches, browser toggles).
    Fixed(UnionStrategy),
}

/// Options controlling the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteOptions {
    /// Semantics used when `SELECT PROVENANCE` has no `ON CONTRIBUTION`.
    pub default_semantics: ContributionSemantics,
    /// Strategy selection for UNION rewrites.
    pub union_strategy: StrategyMode,
}

impl Default for RewriteOptions {
    fn default() -> RewriteOptions {
        RewriteOptions {
            default_semantics: ContributionSemantics::Influence,
            union_strategy: StrategyMode::Heuristic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_overrides_default() {
        let s = Semantics::from_clause(
            Some(ContributionSemantics::Lineage),
            ContributionSemantics::Influence,
        );
        assert_eq!(s, Semantics::Lineage);
    }

    #[test]
    fn default_applies_when_no_clause() {
        let s = Semantics::from_clause(None, ContributionSemantics::Copy(CopyMode::Complete));
        assert_eq!(s, Semantics::Copy(CopyMode::Complete));
    }

    #[test]
    fn default_options_follow_perm() {
        let o = RewriteOptions::default();
        assert_eq!(o.default_semantics, ContributionSemantics::Influence);
        assert_eq!(o.union_strategy, StrategyMode::Heuristic);
    }
}
