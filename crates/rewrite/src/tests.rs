//! Rewrite-rule tests: SQL in, rewritten plan shape out (execution-level
//! checks live in the core crate's tests).

use std::collections::HashMap;

use perm_algebra::catalog::{BaseTableMeta, CatalogProvider};
use perm_algebra::{bind_statement, plan_tree, BoundStatement, LogicalPlan};
use perm_sql::{parse_statement, Query, Statement};
use perm_types::{Column, DataType, Schema};

use crate::*;

struct Forum {
    tables: HashMap<String, BaseTableMeta>,
    views: HashMap<String, Query>,
}

impl Forum {
    fn new() -> Forum {
        let mut tables = HashMap::new();
        let t = |cols: &[(&str, DataType)]| BaseTableMeta {
            schema: Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect()),
            provenance_cols: vec![],
        };
        tables.insert(
            "messages".into(),
            t(&[
                ("mid", DataType::Int),
                ("text", DataType::Text),
                ("uid", DataType::Int),
            ]),
        );
        tables.insert(
            "imports".into(),
            t(&[
                ("mid", DataType::Int),
                ("text", DataType::Text),
                ("origin", DataType::Text),
            ]),
        );
        tables.insert(
            "approved".into(),
            t(&[("uid", DataType::Int), ("mid", DataType::Int)]),
        );
        // An eagerly-materialized provenance table: columns 1.. are
        // recorded provenance.
        tables.insert(
            "eager_p".into(),
            BaseTableMeta {
                schema: Schema::new(vec![
                    Column::new("mid", DataType::Int),
                    Column::new("prov_public_messages_mid", DataType::Int),
                    Column::new("prov_public_messages_text", DataType::Text),
                ]),
                provenance_cols: vec![1, 2],
            },
        );
        let mut views = HashMap::new();
        views.insert(
            "v1".into(),
            query("SELECT mid, text FROM messages UNION SELECT mid, text FROM imports"),
        );
        Forum { tables, views }
    }
}

fn query(sql: &str) -> Query {
    match parse_statement(sql).unwrap() {
        Statement::Query(q) => q,
        _ => unreachable!(),
    }
}

impl CatalogProvider for Forum {
    fn base_table(&self, name: &str) -> Option<BaseTableMeta> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }
    fn view_definition(&self, name: &str) -> Option<Query> {
        self.views.get(&name.to_ascii_lowercase()).cloned()
    }
}

/// Bind a `SELECT PROVENANCE` query through the rewriter with options.
fn rewrite_with(sql: &str, options: RewriteOptions) -> perm_types::Result<LogicalPlan> {
    let cat = Forum::new();
    let rewriter = Rewriter::new(options, &UnknownCardinality);
    let stmt = parse_statement(sql)?;
    match bind_statement(&stmt, &cat, Some(&rewriter))? {
        BoundStatement::Query(p) => Ok(p),
        other => panic!("expected query, got {other:?}"),
    }
}

fn rewrite_sql(sql: &str) -> LogicalPlan {
    rewrite_with(sql, RewriteOptions::default())
        .unwrap_or_else(|e| panic!("rewrite of {sql:?} failed: {e}"))
}

// ----------------------------------------------------------------------
// Base access and projection rules
// ----------------------------------------------------------------------

#[test]
fn scan_provenance_duplicates_all_attributes() {
    let p = rewrite_sql("SELECT PROVENANCE mid, text, uid FROM messages");
    assert_eq!(
        p.schema().names(),
        vec![
            "mid",
            "text",
            "uid",
            "prov_public_messages_mid",
            "prov_public_messages_text",
            "prov_public_messages_uid"
        ]
    );
}

#[test]
fn projection_keeps_provenance_of_all_attributes() {
    // Even though only `text` is projected, the provenance covers the whole
    // contributing tuple (paper Figure 2's schema behaviour).
    let p = rewrite_sql("SELECT PROVENANCE text FROM messages");
    assert_eq!(
        p.schema().names(),
        vec![
            "text",
            "prov_public_messages_mid",
            "prov_public_messages_text",
            "prov_public_messages_uid"
        ]
    );
}

#[test]
fn provenance_attribute_types_follow_sources() {
    let p = rewrite_sql("SELECT PROVENANCE text FROM messages");
    let s = p.schema();
    assert_eq!(s.column(1).ty, DataType::Int);
    assert_eq!(s.column(2).ty, DataType::Text);
    assert!(s.column(1).nullable, "prov attrs are nullable");
}

#[test]
fn filter_passes_through() {
    let p = rewrite_sql("SELECT PROVENANCE mid FROM messages WHERE mid > 2");
    let tree = plan_tree(&p);
    assert!(tree.contains("Filter"), "{tree}");
    assert_eq!(p.arity(), 4);
}

// ----------------------------------------------------------------------
// Join rule
// ----------------------------------------------------------------------

#[test]
fn join_concatenates_provenance_lists() {
    let p =
        rewrite_sql("SELECT PROVENANCE m.text FROM messages m JOIN approved a ON m.mid = a.mid");
    let names = p.schema().names();
    assert_eq!(
        names,
        vec![
            "text",
            "prov_public_messages_mid",
            "prov_public_messages_text",
            "prov_public_messages_uid",
            "prov_public_approved_uid",
            "prov_public_approved_mid",
        ]
    );
}

#[test]
fn self_join_repeats_relation_names() {
    let p = rewrite_sql("SELECT PROVENANCE a.mid FROM messages a JOIN messages b ON a.mid = b.mid");
    let names = p.schema().names();
    let count = names
        .iter()
        .filter(|n| **n == "prov_public_messages_mid")
        .count();
    assert_eq!(count, 2, "{names:?}");
}

#[test]
fn left_join_keeps_provenance_attrs_nullable() {
    let p = rewrite_sql(
        "SELECT PROVENANCE m.mid FROM messages m LEFT JOIN approved a ON m.mid = a.mid",
    );
    let s = p.schema();
    // approved's provenance attrs are on the padded side.
    assert!(s.column(s.len() - 1).nullable);
}

// ----------------------------------------------------------------------
// Set operations (the q1 shape of Figure 2)
// ----------------------------------------------------------------------

#[test]
fn union_schema_matches_figure_2() {
    let p = rewrite_sql(
        "SELECT PROVENANCE * FROM (SELECT mid, text FROM messages \
         UNION SELECT mid, text FROM imports) q1",
    );
    assert_eq!(
        p.schema().names(),
        vec![
            "mid",
            "text",
            "prov_public_messages_mid",
            "prov_public_messages_text",
            "prov_public_messages_uid",
            "prov_public_imports_mid",
            "prov_public_imports_text",
            "prov_public_imports_origin",
        ],
        "Figure 2: original attributes, then messages' provenance, then imports'"
    );
}

#[test]
fn union_all_uses_padded_union_without_distinct() {
    let p = rewrite_sql(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         UNION ALL SELECT mid FROM imports) u",
    );
    let tree = plan_tree(&p);
    assert!(tree.contains("UnionAll"), "{tree}");
}

#[test]
fn set_union_dedups_witness_pairs() {
    let p = rewrite_sql(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         UNION SELECT mid FROM imports) u",
    );
    let tree = plan_tree(&p);
    assert!(tree.contains("Distinct"), "{tree}");
    assert!(tree.contains("UnionAll"), "{tree}");
}

#[test]
fn join_back_union_strategy_builds_join() {
    let opts = RewriteOptions {
        union_strategy: StrategyMode::Fixed(UnionStrategy::JoinBack),
        ..RewriteOptions::default()
    };
    let p = rewrite_with(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         UNION SELECT mid FROM imports) u",
        opts,
    )
    .unwrap();
    let tree = plan_tree(&p);
    assert!(tree.contains("InnerJoin"), "{tree}");
    assert!(tree.contains("Union"), "{tree}");
}

#[test]
fn join_back_rejects_union_all() {
    let opts = RewriteOptions {
        union_strategy: StrategyMode::Fixed(UnionStrategy::JoinBack),
        ..RewriteOptions::default()
    };
    let err = rewrite_with(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         UNION ALL SELECT mid FROM imports) u",
        opts,
    )
    .unwrap_err();
    assert_eq!(err.kind(), "rewrite");
}

#[test]
fn cost_based_union_picks_a_strategy() {
    let opts = RewriteOptions {
        union_strategy: StrategyMode::CostBased,
        ..RewriteOptions::default()
    };
    // Must simply succeed and produce the Figure 2 schema width.
    let p = rewrite_with(
        "SELECT PROVENANCE * FROM (SELECT mid, text FROM messages \
         UNION SELECT mid, text FROM imports) u",
        opts,
    )
    .unwrap();
    assert_eq!(p.arity(), 8);
}

#[test]
fn intersect_joins_both_sides_back() {
    let p = rewrite_sql(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         INTERSECT SELECT mid FROM imports) i",
    );
    let names = p.schema().names();
    assert!(names.contains(&"prov_public_messages_mid"), "{names:?}");
    assert!(names.contains(&"prov_public_imports_mid"), "{names:?}");
    let tree = plan_tree(&p);
    assert!(tree.matches("InnerJoin").count() >= 2, "{tree}");
}

#[test]
fn except_pads_right_side_under_influence() {
    let p = rewrite_sql(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages \
         EXCEPT SELECT mid FROM imports) e",
    );
    let names = p.schema().names();
    // Right side attrs present in schema but produced as NULL literals.
    assert!(names.contains(&"prov_public_imports_mid"), "{names:?}");
}

#[test]
fn except_under_lineage_joins_whole_right_side() {
    let p = rewrite_sql(
        "SELECT PROVENANCE ON CONTRIBUTION (LINEAGE) * FROM \
         (SELECT mid FROM messages EXCEPT SELECT mid FROM imports) e",
    );
    let tree = plan_tree(&p);
    // Lineage attaches the right side through a LEFT JOIN ON true.
    assert!(tree.contains("LeftJoin on true"), "{tree}");
}

// ----------------------------------------------------------------------
// Aggregation rule
// ----------------------------------------------------------------------

#[test]
fn aggregation_joins_back_on_group_attributes() {
    let p = rewrite_sql("SELECT PROVENANCE uid, count(*) FROM approved GROUP BY uid");
    let tree = plan_tree(&p);
    assert!(
        tree.contains("LeftJoin on (#0 IS NOT DISTINCT FROM"),
        "NULL-safe join-back expected:\n{tree}"
    );
    assert!(tree.contains("Aggregate"), "{tree}");
    assert_eq!(
        p.schema().names(),
        vec![
            "uid",
            "count",
            "prov_public_approved_uid",
            "prov_public_approved_mid"
        ]
    );
}

#[test]
fn global_aggregate_joins_on_true() {
    let p = rewrite_sql("SELECT PROVENANCE count(*) FROM messages");
    let tree = plan_tree(&p);
    assert!(tree.contains("LeftJoin on true"), "{tree}");
}

#[test]
fn paper_q3_provenance_schema() {
    // The §2.4 listing: provenance of the aggregation over v1 ⋈ approved.
    let p = rewrite_sql(
        "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text \
         FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId",
    );
    let names = p.schema().names();
    assert_eq!(names[0], "count");
    assert_eq!(names[1], "text");
    // v1 is a view over messages ∪ imports: provenance reaches through it.
    assert!(names.contains(&"prov_public_messages_mid"), "{names:?}");
    assert!(names.contains(&"prov_public_imports_origin"), "{names:?}");
    assert!(names.contains(&"prov_public_approved_uid"), "{names:?}");
    assert_eq!(names.len(), 2 + 3 + 3 + 2);
}

// ----------------------------------------------------------------------
// BASERELATION and external provenance (paper §2.4)
// ----------------------------------------------------------------------

#[test]
fn baserelation_stops_the_rewrite_at_the_view() {
    let p = rewrite_sql("SELECT PROVENANCE text FROM v1 BASERELATION");
    let names = p.schema().names();
    // Provenance attributes derive from v1, not messages/imports.
    assert_eq!(
        names,
        vec!["text", "prov_public_v1_mid", "prov_public_v1_text"]
    );
    // The view body is still executed (Union inside), but not rewritten:
    // no prov_public_messages_* columns anywhere.
    let tree = plan_tree(&p);
    assert!(tree.contains("Union"), "{tree}");
}

#[test]
fn external_provenance_attrs_propagate_untouched() {
    let p = rewrite_sql("SELECT PROVENANCE mid, text FROM imports PROVENANCE (origin)");
    // `origin` is the (externally produced) provenance; no duplication.
    assert_eq!(p.schema().names(), vec!["mid", "text", "origin"]);
}

#[test]
fn eager_provenance_table_reuses_recorded_columns() {
    let p = rewrite_sql("SELECT PROVENANCE mid FROM eager_p");
    assert_eq!(
        p.schema().names(),
        vec![
            "mid",
            "prov_public_messages_mid",
            "prov_public_messages_text"
        ]
    );
    // No duplication of eager_p's own columns.
    let tree = plan_tree(&p);
    assert!(!tree.contains("prov_public_eager_p"), "{tree}");
}

// ----------------------------------------------------------------------
// Sublinks (EDBT'09)
// ----------------------------------------------------------------------

#[test]
fn uncorrelated_in_sublink_unnests_to_join() {
    let p = rewrite_sql(
        "SELECT PROVENANCE text FROM messages \
         WHERE mid IN (SELECT mid FROM approved)",
    );
    let names = p.schema().names();
    assert!(names.contains(&"prov_public_approved_mid"), "{names:?}");
    let tree = plan_tree(&p);
    assert!(tree.contains("InnerJoin"), "{tree}");
}

#[test]
fn uncorrelated_exists_cross_joins_witnesses() {
    let p = rewrite_sql(
        "SELECT PROVENANCE text FROM messages \
         WHERE EXISTS (SELECT 1 FROM approved)",
    );
    let tree = plan_tree(&p);
    assert!(tree.contains("CrossJoin"), "{tree}");
    assert!(
        p.schema().names().contains(&"prov_public_approved_uid"),
        "{:?}",
        p.schema().names()
    );
}

#[test]
fn negated_sublink_pads_nulls() {
    let p = rewrite_sql(
        "SELECT PROVENANCE text FROM messages \
         WHERE mid NOT IN (SELECT mid FROM approved)",
    );
    let names = p.schema().names();
    assert!(names.contains(&"prov_public_approved_mid"), "{names:?}");
}

#[test]
fn correlated_sublink_is_rejected_in_provenance() {
    let err = rewrite_with(
        "SELECT PROVENANCE text FROM messages m \
         WHERE EXISTS (SELECT 1 FROM approved a WHERE a.mid = m.mid)",
        RewriteOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err.kind(), "rewrite");
    assert!(err.message().contains("correlated"), "{err}");
}

#[test]
fn scalar_sublink_is_rejected_in_provenance() {
    // A bare scalar sublink conjunct.
    let err = rewrite_with(
        "SELECT PROVENANCE text FROM messages WHERE (SELECT true)",
        RewriteOptions::default(),
    )
    .unwrap_err();
    assert!(err.message().contains("scalar"), "{err}");
    // A sublink nested inside a comparison.
    let err = rewrite_with(
        "SELECT PROVENANCE text FROM messages \
         WHERE mid = (SELECT max(mid) FROM approved)",
        RewriteOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err.kind(), "rewrite");
}

// ----------------------------------------------------------------------
// Copy-CS and limits
// ----------------------------------------------------------------------

#[test]
fn copy_partial_nulls_non_copied_attributes() {
    // Only `text` is copied to the output; mid/uid provenance must be NULL
    // literals, but text's provenance survives.
    let p = rewrite_sql("SELECT PROVENANCE ON CONTRIBUTION (COPY) text FROM messages");
    let tree = plan_tree(&p);
    // A projection with NULL literals replacing non-copied attributes.
    assert!(tree.contains("null"), "{tree}");
    assert_eq!(p.arity(), 4);
}

#[test]
fn copy_complete_nulls_whole_relation_when_partial() {
    // Not all of messages' attributes are copied -> under COMPLETE the
    // whole relation instance is NULLed.
    let p = rewrite_sql("SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) text FROM messages");
    match &p {
        LogicalPlan::Project { exprs, .. } => {
            use perm_algebra::expr::ScalarExpr;
            use perm_types::Value;
            let nulls = exprs
                .iter()
                .filter(|e| matches!(e, ScalarExpr::Literal(Value::Null)))
                .count();
            assert_eq!(nulls, 3, "all three prov attrs nulled");
        }
        other => panic!("expected top projection, got {other:?}"),
    }
}

#[test]
fn copy_complete_keeps_fully_copied_relation() {
    let p = rewrite_sql(
        "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) mid, text, uid FROM messages",
    );
    match &p {
        LogicalPlan::Project { exprs, .. } => {
            use perm_algebra::expr::ScalarExpr;
            use perm_types::Value;
            let nulls = exprs
                .iter()
                .filter(|e| matches!(e, ScalarExpr::Literal(Value::Null)))
                .count();
            assert_eq!(nulls, 0, "everything copied, nothing nulled");
        }
        _ => {
            // No copy projection inserted at all is equally fine.
        }
    }
}

#[test]
fn limit_inside_provenance_is_rejected() {
    let err = rewrite_with(
        "SELECT PROVENANCE * FROM (SELECT mid FROM messages LIMIT 1) l",
        RewriteOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err.kind(), "rewrite");
    assert!(err.message().contains("LIMIT"), "{err}");
}

#[test]
fn order_by_outside_provenance_select_is_fine() {
    let p = rewrite_sql("SELECT PROVENANCE mid FROM messages ORDER BY mid DESC");
    assert!(matches!(p, LogicalPlan::Sort { .. }));
}

// ----------------------------------------------------------------------
// Composability: querying provenance (paper §2.4 middle listing)
// ----------------------------------------------------------------------

#[test]
fn provenance_subquery_composes_with_normal_sql() {
    let p = rewrite_sql(
        "SELECT text, prov_public_imports_origin FROM \
         (SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId \
          GROUP BY v1.mId) AS prov \
         WHERE count > 5 AND prov_public_imports_origin = 'superForum'",
    );
    assert_eq!(
        p.schema().names(),
        vec!["text", "prov_public_imports_origin"]
    );
}

#[test]
fn rewriter_reports_provenance_positions() {
    let cat = Forum::new();
    let rewriter = Rewriter::basic();
    let stmt = parse_statement("SELECT PROVENANCE text FROM messages").unwrap();
    let mut binder = perm_algebra::Binder::with_provenance(&cat, &rewriter);
    let q = match stmt {
        Statement::Query(q) => q,
        _ => unreachable!(),
    };
    binder.bind_query(&q).unwrap();
    assert_eq!(binder.last_provenance_attrs(), Some(&[1, 2, 3][..]));
}
