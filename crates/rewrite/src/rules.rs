//! The algebraic provenance rewrite rules (paper §2.2).
//!
//! Each rule takes an operator of the bound [`LogicalPlan`] and the
//! provenance attribute list `P` of its (already rewritten) input, and
//! produces a rewritten operator plus the new list `P`. The rules are
//! *compositional*: they only see positions, never where a provenance
//! attribute came from — which is exactly what lets them propagate external
//! provenance unchanged.
//!
//! For example the projection rule of the paper,
//!
//! ```text
//! (Π_A(T))+ = Π_{A, P(T+)}(T+)    with P((Π_A(T))+) = P(T+)
//! ```
//!
//! is `Ctx::rewrite_project` below.

use std::cell::Cell;
use std::collections::BTreeSet;

use perm_types::{PermError, Result, Schema, Value};

use perm_algebra::expr::ScalarExpr;
use perm_algebra::plan::{BoundaryKind, JoinType, LogicalPlan, SortKey};

use crate::cost::CardinalityEstimator;
use crate::options::{RewriteOptions, Semantics};
use crate::provattr::ProvAttrInfo;
use crate::{aggregate, setops, sublink};

/// A rewritten subtree: the plan `q+` plus the bookkeeping the parent rule
/// needs.
#[derive(Debug, Clone)]
pub struct Rewritten {
    pub plan: LogicalPlan,
    /// For each output column of the *original* operator, its position in
    /// `plan`'s schema.
    pub orig: Vec<usize>,
    /// Positions of the provenance attributes in `plan`'s schema, in
    /// left-to-right base-relation order.
    pub prov: Vec<usize>,
    /// Metadata for each provenance attribute (aligned with `prov`).
    pub attrs: Vec<ProvAttrInfo>,
    /// For each original output column, the set of provenance-attribute
    /// *indices* (into `prov`/`attrs`) whose values are **copied** verbatim
    /// into that column — the static copy map driving Copy-CS
    /// (Where-provenance) semantics.
    pub copy_sets: Vec<BTreeSet<usize>>,
}

impl Rewritten {
    /// A rewrite that added nothing (e.g. `Values`).
    pub fn identity(plan: LogicalPlan) -> Rewritten {
        let n = plan.arity();
        Rewritten {
            plan,
            orig: (0..n).collect(),
            prov: vec![],
            attrs: vec![],
            copy_sets: vec![BTreeSet::new(); n],
        }
    }

    /// Number of original output columns.
    pub fn n_orig(&self) -> usize {
        self.orig.len()
    }

    /// Remap an expression written against the original operator's schema
    /// to the rewritten plan's schema.
    pub fn remap(&self, e: &ScalarExpr) -> ScalarExpr {
        e.map_columns(&|i| self.orig[i])
    }

    /// Normalize to the canonical layout `[original columns][provenance
    /// attributes]` via a projection. `orig` becomes `0..n`, `prov` becomes
    /// `n..n+p`.
    pub fn normalized(self) -> Rewritten {
        let n = self.n_orig();
        let already = self.orig.iter().enumerate().all(|(i, &p)| i == p)
            && self.prov.iter().enumerate().all(|(i, &p)| p == n + i)
            && self.plan.arity() == n + self.prov.len();
        if already {
            return self;
        }
        let in_schema = self.plan.schema().clone();
        let mut exprs = Vec::with_capacity(n + self.prov.len());
        let mut columns = Vec::with_capacity(n + self.prov.len());
        for &p in &self.orig {
            exprs.push(ScalarExpr::Column(p));
            columns.push(in_schema.column(p).clone());
        }
        for (&p, info) in self.prov.iter().zip(&self.attrs) {
            let _ = p;
            exprs.push(ScalarExpr::Column(p));
            columns.push(info.column.clone());
        }
        let plan = LogicalPlan::Project {
            input: Box::new(self.plan),
            exprs,
            schema: Schema::new(columns),
        };
        Rewritten {
            plan,
            orig: (0..n).collect(),
            prov: (n..n + self.prov.len()).collect(),
            attrs: self.attrs,
            copy_sets: self.copy_sets,
        }
    }
}

/// Rewrite context: semantics, strategy options and the cardinality
/// estimator backing cost-based strategy selection.
pub struct Ctx<'a> {
    pub semantics: Semantics,
    pub options: &'a RewriteOptions,
    pub estimator: &'a dyn CardinalityEstimator,
    /// Counter handing out relation-instance group ids (see
    /// [`ProvAttrInfo::group`]).
    pub groups: Cell<usize>,
}

impl<'a> Ctx<'a> {
    /// Fresh relation-instance group id.
    pub fn next_group(&self) -> usize {
        let g = self.groups.get();
        self.groups.set(g + 1);
        g
    }

    /// Apply the rewrite rules to `plan`, bottom-up.
    pub fn rewrite(&self, plan: &LogicalPlan) -> Result<Rewritten> {
        match plan {
            LogicalPlan::Scan {
                table,
                schema,
                provenance_cols,
            } => Ok(self.rewrite_scan(table, schema, provenance_cols)),
            LogicalPlan::Values { .. } => Ok(Rewritten::identity(plan.clone())),
            LogicalPlan::Boundary { input, name, kind } => self.rewrite_boundary(input, name, kind),
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => self.rewrite_project(input, exprs, schema),
            LogicalPlan::Filter { input, predicate } => self.rewrite_filter(input, predicate),
            LogicalPlan::Join {
                left,
                right,
                kind,
                condition,
                ..
            } => self.rewrite_join(left, right, *kind, condition.as_ref()),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => aggregate::rewrite_aggregate(self, plan, input, group_by, aggs, schema),
            LogicalPlan::Distinct { input } => self.rewrite_distinct(input),
            LogicalPlan::SetOp {
                op,
                all,
                left,
                right,
                schema,
            } => setops::rewrite_setop(self, plan, *op, *all, left, right, schema),
            LogicalPlan::Sort { input, keys } => self.rewrite_sort(input, keys),
            LogicalPlan::Limit { .. } => Err(PermError::Rewrite(
                "LIMIT/OFFSET inside a provenance computation is not supported: \
                 the witness set of a limited result is not well-defined; \
                 apply LIMIT outside the SELECT PROVENANCE subquery"
                    .into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Base access
    // ------------------------------------------------------------------

    /// Base-relation rule: duplicate every attribute as a provenance
    /// attribute named `prov_public_<table>_<attr>`.
    ///
    /// A table with recorded provenance columns (eager provenance /
    /// external provenance metadata) is *not* duplicated: the recorded
    /// columns already are its provenance, and are propagated untouched
    /// (the paper's incremental computation path).
    fn rewrite_scan(&self, table: &str, schema: &Schema, provenance_cols: &[usize]) -> Rewritten {
        let plan = LogicalPlan::Scan {
            table: table.to_string(),
            schema: schema.clone(),
            provenance_cols: provenance_cols.to_vec(),
        };
        if !provenance_cols.is_empty() {
            let n = schema.len();
            let group = self.next_group();
            let attrs: Vec<ProvAttrInfo> = provenance_cols
                .iter()
                .map(|&p| ProvAttrInfo::external(table, schema.column(p), group))
                .collect();
            let copy_sets = (0..n)
                .map(|i| {
                    provenance_cols
                        .iter()
                        .position(|&p| p == i)
                        .into_iter()
                        .collect()
                })
                .collect();
            return Rewritten {
                plan,
                orig: (0..n).collect(),
                prov: provenance_cols.to_vec(),
                attrs,
                copy_sets,
            };
        }
        duplicate_as_provenance(plan, table, self.next_group())
    }

    /// `BASERELATION` / `PROVENANCE (attrs)` boundaries (paper §2.4).
    fn rewrite_boundary(
        &self,
        input: &LogicalPlan,
        name: &str,
        kind: &BoundaryKind,
    ) -> Result<Rewritten> {
        match kind {
            // Stop the rewrite: the subtree is executed as-is and its
            // output tuples are treated like base tuples.
            BoundaryKind::BaseRelation => Ok(duplicate_as_provenance(
                input.clone(),
                name,
                self.next_group(),
            )),
            // The listed attributes already are provenance; propagate them.
            BoundaryKind::External { attrs } => {
                let schema = input.schema();
                let n = schema.len();
                let group = self.next_group();
                let infos: Vec<ProvAttrInfo> = attrs
                    .iter()
                    .map(|&p| ProvAttrInfo::external(name, schema.column(p), group))
                    .collect();
                let copy_sets = (0..n)
                    .map(|i| attrs.iter().position(|&p| p == i).into_iter().collect())
                    .collect();
                Ok(Rewritten {
                    plan: input.clone(),
                    orig: (0..n).collect(),
                    prov: attrs.clone(),
                    attrs: infos,
                    copy_sets,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Unary operators
    // ------------------------------------------------------------------

    /// Projection rule: `(Π_A(T))+ = Π_{A, P(T+)}(T+)`.
    fn rewrite_project(
        &self,
        input: &LogicalPlan,
        exprs: &[ScalarExpr],
        schema: &Schema,
    ) -> Result<Rewritten> {
        let rt = self.rewrite(input)?;
        check_no_sublink(exprs.iter(), "SELECT list")?;
        let mut new_exprs: Vec<ScalarExpr> = exprs.iter().map(|e| rt.remap(e)).collect();
        let mut columns: Vec<_> = schema.columns().to_vec();
        // Copy map: which provenance attributes does each output expression
        // copy verbatim?
        let copy_sets: Vec<BTreeSet<usize>> = exprs
            .iter()
            .map(|e| expr_copy_set(e, &rt.copy_sets))
            .collect();
        for (&p, info) in rt.prov.iter().zip(&rt.attrs) {
            new_exprs.push(ScalarExpr::Column(p));
            columns.push(info.column.clone());
        }
        let n = exprs.len();
        let plan = LogicalPlan::Project {
            input: Box::new(rt.plan),
            exprs: new_exprs,
            schema: Schema::new(columns),
        };
        Ok(Rewritten {
            plan,
            orig: (0..n).collect(),
            prov: (n..n + rt.prov.len()).collect(),
            attrs: rt.attrs,
            copy_sets,
        })
    }

    /// Selection rule: `(σ_c(T))+ = σ_c(T+)`. Sublinks in the predicate are
    /// unnested (EDBT'09) in [`sublink`].
    fn rewrite_filter(&self, input: &LogicalPlan, predicate: &ScalarExpr) -> Result<Rewritten> {
        if predicate.contains_subquery() {
            return sublink::rewrite_filter_with_sublinks(self, input, predicate);
        }
        let rt = self.rewrite(input)?;
        let pred = rt.remap(predicate);
        Ok(Rewritten {
            plan: LogicalPlan::filter(rt.plan, pred),
            ..rt
        })
    }

    /// Join rule: `(T1 ⋈_c T2)+ = T1+ ⋈_c T2+`, positions shifted.
    /// Outer joins pad the non-matching side's provenance attributes with
    /// NULL automatically (the padded side's columns *are* NULL).
    fn rewrite_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        kind: JoinType,
        condition: Option<&ScalarExpr>,
    ) -> Result<Rewritten> {
        if matches!(kind, JoinType::Semi | JoinType::Anti) {
            return Err(PermError::Rewrite(
                "semi/anti joins are introduced by the rewriter itself and \
                 cannot be re-rewritten"
                    .into(),
            ));
        }
        let lt = self.rewrite(left)?;
        let rt = self.rewrite(right)?;
        let (nl, shift) = (left.arity(), lt.plan.arity());
        if let Some(c) = condition {
            check_no_sublink(std::iter::once(c), "JOIN condition")?;
        }
        // Remap the condition: left-side refs through lt.orig, right-side
        // refs through rt.orig shifted past the whole rewritten left input.
        let cond = condition.map(|c| {
            c.map_columns(&|i| {
                if i < nl {
                    lt.orig[i]
                } else {
                    shift + rt.orig[i - nl]
                }
            })
        });
        let plan = LogicalPlan::join(lt.plan, rt.plan, kind, cond)?;
        let orig: Vec<usize> = lt
            .orig
            .iter()
            .copied()
            .chain(rt.orig.iter().map(|&p| shift + p))
            .collect();
        let prov: Vec<usize> = lt
            .prov
            .iter()
            .copied()
            .chain(rt.prov.iter().map(|&p| shift + p))
            .collect();
        let mut attrs = lt.attrs;
        attrs.extend(rt.attrs);
        let prov_shift = lt.prov.len();
        let mut copy_sets = lt.copy_sets;
        copy_sets.extend(
            rt.copy_sets
                .into_iter()
                .map(|s| s.into_iter().map(|i| i + prov_shift).collect()),
        );
        Ok(Rewritten {
            plan,
            orig,
            prov,
            attrs,
            copy_sets,
        })
    }

    /// Duplicate-elimination rule: `(δ(T))+ = δ(Π_{A,P}(T+))` — each
    /// distinct result tuple is kept once *per distinct witness*.
    fn rewrite_distinct(&self, input: &LogicalPlan) -> Result<Rewritten> {
        let rt = self.rewrite(input)?.normalized();
        Ok(Rewritten {
            plan: LogicalPlan::Distinct {
                input: Box::new(rt.plan),
            },
            orig: rt.orig,
            prov: rt.prov,
            attrs: rt.attrs,
            copy_sets: rt.copy_sets,
        })
    }

    /// Sort rule: `(sort(T))+ = sort(T+)` with keys remapped. Provenance
    /// attributes do not participate in the ordering.
    fn rewrite_sort(&self, input: &LogicalPlan, keys: &[SortKey]) -> Result<Rewritten> {
        let rt = self.rewrite(input)?;
        let keys: Vec<SortKey> = keys
            .iter()
            .map(|k| SortKey {
                expr: rt.remap(&k.expr),
                desc: k.desc,
            })
            .collect();
        Ok(Rewritten {
            plan: LogicalPlan::Sort {
                input: Box::new(rt.plan),
                keys,
            },
            ..rt
        })
    }
}

/// Duplicate every output column of `plan` as a provenance attribute named
/// after `relation` — the base-access rule, also used for `BASERELATION`.
pub fn duplicate_as_provenance(plan: LogicalPlan, relation: &str, group: usize) -> Rewritten {
    let schema = plan.schema().clone();
    let n = schema.len();
    let mut exprs: Vec<ScalarExpr> = (0..n).map(ScalarExpr::Column).collect();
    exprs.extend((0..n).map(ScalarExpr::Column));
    let mut columns = schema.columns().to_vec();
    let attrs: Vec<ProvAttrInfo> = schema
        .iter()
        .map(|c| ProvAttrInfo::for_attribute(relation, c, group))
        .collect();
    columns.extend(attrs.iter().map(|a| a.column.clone()));
    let plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(columns),
    };
    Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..2 * n).collect(),
        attrs,
        // Each original column is (trivially) a copy of its duplicate.
        copy_sets: (0..n).map(|i| BTreeSet::from([i])).collect(),
    }
}

/// Build a projection that appends `NULL`-typed provenance columns for
/// `attrs` to `rw` (used when a branch or sublink contributes nothing).
pub fn pad_null_provenance(rw: Rewritten, pad_attrs: &[ProvAttrInfo]) -> Rewritten {
    let rw = rw.normalized();
    let n = rw.n_orig();
    let p = rw.prov.len();
    let in_schema = rw.plan.schema().clone();
    let mut exprs: Vec<ScalarExpr> = (0..n + p).map(ScalarExpr::Column).collect();
    let mut columns = in_schema.columns().to_vec();
    for a in pad_attrs {
        exprs.push(ScalarExpr::Literal(Value::Null));
        columns.push(a.column.clone());
    }
    let plan = LogicalPlan::Project {
        input: Box::new(rw.plan),
        exprs,
        schema: Schema::new(columns),
    };
    let mut attrs = rw.attrs;
    attrs.extend(pad_attrs.iter().cloned());
    Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..n + p + pad_attrs.len()).collect(),
        attrs,
        copy_sets: rw.copy_sets,
    }
}

/// Copy map of one projection expression: the provenance attributes whose
/// value this expression copies verbatim. Identity column references copy;
/// `CASE` unions its branches (static approximation of per-tuple
/// Where-provenance); computations copy nothing.
pub fn expr_copy_set(e: &ScalarExpr, input_sets: &[BTreeSet<usize>]) -> BTreeSet<usize> {
    match e {
        ScalarExpr::Column(i) => input_sets.get(*i).cloned().unwrap_or_default(),
        ScalarExpr::Case {
            branches,
            else_branch,
            ..
        } => {
            let mut s = BTreeSet::new();
            for (_, r) in branches {
                s.extend(expr_copy_set(r, input_sets));
            }
            if let Some(el) = else_branch {
                s.extend(expr_copy_set(el, input_sets));
            }
            s
        }
        _ => BTreeSet::new(),
    }
}

fn check_no_sublink<'e>(exprs: impl Iterator<Item = &'e ScalarExpr>, ctx: &str) -> Result<()> {
    for e in exprs {
        if e.contains_subquery() {
            return Err(PermError::Rewrite(format!(
                "subqueries in the {ctx} are not supported inside a provenance \
                 computation (only WHERE-clause IN/EXISTS sublinks are)"
            )));
        }
    }
    Ok(())
}
