//! Copy-CS (Where-provenance) post-processing.
//!
//! Perm's `COPY` contribution semantics restricts the provenance to values
//! actually **copied** from the base relations into the result. The
//! influence rewrite already threads a static *copy map* through every rule
//! (see [`crate::rules::Rewritten::copy_sets`]): for each original output
//! column, the set of provenance attributes whose values reach it through
//! identity projections (with `CASE` branches unioned as a static
//! approximation of per-tuple copying).
//!
//! This module applies the final step: provenance attributes that are never
//! copied are replaced by `NULL`.
//!
//! * `COPY PARTIAL` (the default) — per *attribute*: an attribute survives
//!   if at least one output column copies it.
//! * `COPY COMPLETE` — per *relation instance*: a relation's attributes
//!   survive only if **every** one of them is copied somewhere.

use std::collections::BTreeSet;

use perm_algebra::expr::ScalarExpr;
use perm_algebra::plan::LogicalPlan;
use perm_types::{Schema, Value};

use crate::options::CopyMode;
use crate::rules::Rewritten;

/// Replace non-copied provenance attributes with NULL, per `mode`.
pub fn apply_copy_mode(rw: Rewritten, mode: CopyMode) -> Rewritten {
    let rw = rw.normalized();
    let n = rw.n_orig();
    let p = rw.prov.len();

    // All provenance attribute indices copied by some output column.
    let copied: BTreeSet<usize> = rw
        .copy_sets
        .iter()
        .flat_map(|s| s.iter().copied())
        .collect();

    let keep: Vec<bool> = match mode {
        CopyMode::Partial => (0..p).map(|k| copied.contains(&k)).collect(),
        CopyMode::Complete => {
            // A group (relation instance) survives only if every attribute
            // of the group is copied.
            let groups: BTreeSet<usize> = rw.attrs.iter().map(|a| a.group).collect();
            let complete: BTreeSet<usize> = groups
                .into_iter()
                .filter(|g| {
                    rw.attrs
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.group == *g)
                        .all(|(k, _)| copied.contains(&k))
                })
                .collect();
            rw.attrs
                .iter()
                .map(|a| complete.contains(&a.group))
                .collect()
        }
    };

    if keep.iter().all(|&k| k) {
        return rw;
    }

    let in_schema = rw.plan.schema().clone();
    let mut exprs: Vec<ScalarExpr> = (0..n).map(ScalarExpr::Column).collect();
    for (k, &kept) in keep.iter().enumerate() {
        if kept {
            exprs.push(ScalarExpr::Column(n + k));
        } else {
            exprs.push(ScalarExpr::Literal(Value::Null));
        }
    }
    let plan = LogicalPlan::Project {
        input: Box::new(rw.plan),
        exprs,
        schema: Schema::new(in_schema.columns().to_vec()),
    };
    Rewritten {
        plan,
        orig: rw.orig,
        prov: rw.prov,
        attrs: rw.attrs,
        copy_sets: rw.copy_sets,
    }
}
