//! Cardinality estimation for cost-based rewrite-strategy selection.
//!
//! Since the two-phase optimizer landed, the estimator lives in
//! [`perm_algebra::stats`] and is shared with the executor's physical
//! planner — the rewrite-strategy chooser and the join planner read the
//! same cardinality truth. This module re-exports it under the historical
//! names so rewrite-internal code and downstream users keep working.

pub use perm_algebra::stats::{
    estimate_cost, estimate_rows, CardinalityEstimator, FixedCardinalities, UnknownCardinality,
    DEFAULT_TABLE_ROWS,
};
