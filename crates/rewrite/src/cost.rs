//! Lightweight cardinality estimation for cost-based rewrite-strategy
//! selection.
//!
//! This is deliberately coarser than the executor's planner cost model: the
//! rewriter only needs to rank *alternative rewrites of the same operator*
//! against each other, for which relative row counts suffice.

use perm_algebra::plan::{JoinType, LogicalPlan, SetOpType};

/// Source of base-table row counts (implemented by the storage catalog).
pub trait CardinalityEstimator {
    /// Exact or estimated row count of a base table, if known.
    fn table_rows(&self, table: &str) -> Option<f64>;
}

/// An estimator that knows nothing; every table defaults to 1000 rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnknownCardinality;

impl CardinalityEstimator for UnknownCardinality {
    fn table_rows(&self, _table: &str) -> Option<f64> {
        None
    }
}

/// Default row count assumed for unknown tables.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Default selectivity of a filter predicate.
const FILTER_SELECTIVITY: f64 = 0.5;
/// Default selectivity of a join condition.
const JOIN_SELECTIVITY: f64 = 0.1;

/// Estimate the output cardinality of a logical plan.
pub fn estimate_rows(plan: &LogicalPlan, est: &dyn CardinalityEstimator) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            est.table_rows(table).unwrap_or(DEFAULT_TABLE_ROWS).max(1.0)
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Boundary { input, .. } => estimate_rows(input, est),
        LogicalPlan::Filter { input, .. } => estimate_rows(input, est) * FILTER_SELECTIVITY,
        LogicalPlan::Join {
            left,
            right,
            kind,
            condition,
            ..
        } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            match kind {
                JoinType::Cross => l * r,
                JoinType::Semi | JoinType::Anti => l * FILTER_SELECTIVITY,
                _ if condition.is_none() => l * r,
                JoinType::Left | JoinType::Full => (l * r * JOIN_SELECTIVITY).max(l),
                _ => (l * r * JOIN_SELECTIVITY).max(1.0),
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let n = estimate_rows(input, est);
            if group_by.is_empty() {
                1.0
            } else {
                // Square-root heuristic for group counts.
                n.sqrt().max(1.0)
            }
        }
        LogicalPlan::Distinct { input } => estimate_rows(input, est) * 0.8,
        LogicalPlan::SetOp {
            op, left, right, ..
        } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            match op {
                SetOpType::Union => l + r,
                SetOpType::Intersect => l.min(r) * 0.5,
                SetOpType::Except => l * 0.5,
            }
        }
        LogicalPlan::Limit { input, limit, .. } => {
            let n = estimate_rows(input, est);
            match limit {
                Some(l) => n.min(*l as f64),
                None => n,
            }
        }
    }
}

/// Estimate the *processing cost* of a plan: the sum of the rows every
/// operator touches. This is the quantity the cost-based strategy chooser
/// compares between alternative rewrites.
pub fn estimate_cost(plan: &LogicalPlan, est: &dyn CardinalityEstimator) -> f64 {
    let own = match plan {
        // Joins cost the product of their input sizes under nested-loop
        // pessimism, damped for equi-join-friendly shapes.
        LogicalPlan::Join { left, right, .. } => {
            let l = estimate_rows(left, est);
            let r = estimate_rows(right, est);
            l + r + (l * r).sqrt() * 2.0
        }
        other => estimate_rows(other, est),
    };
    own + plan
        .children()
        .into_iter()
        .map(|c| estimate_cost(c, est))
        .sum::<f64>()
}

/// A fixed per-table cardinality map (tests, benches).
#[derive(Debug, Default, Clone)]
pub struct FixedCardinalities(pub std::collections::HashMap<String, f64>);

impl CardinalityEstimator for FixedCardinalities {
    fn table_rows(&self, table: &str) -> Option<f64> {
        self.0.get(&table.to_ascii_lowercase()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::expr::ScalarExpr;
    use perm_types::{Column, DataType, Schema, Value};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
            provenance_cols: vec![],
        }
    }

    fn fixed(pairs: &[(&str, f64)]) -> FixedCardinalities {
        FixedCardinalities(pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect())
    }

    #[test]
    fn scan_rows_come_from_estimator() {
        let est = fixed(&[("t", 42.0)]);
        assert_eq!(estimate_rows(&scan("t"), &est), 42.0);
        assert_eq!(estimate_rows(&scan("u"), &est), DEFAULT_TABLE_ROWS);
    }

    #[test]
    fn filter_halves_and_union_adds() {
        let est = fixed(&[("a", 100.0), ("b", 300.0)]);
        let f = LogicalPlan::filter(scan("a"), ScalarExpr::Literal(Value::Bool(true)));
        assert_eq!(estimate_rows(&f, &est), 50.0);
        let u = LogicalPlan::SetOp {
            op: SetOpType::Union,
            all: true,
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
        };
        assert_eq!(estimate_rows(&u, &est), 400.0);
    }

    #[test]
    fn cost_grows_with_plan_size() {
        let est = fixed(&[("a", 100.0)]);
        let simple = scan("a");
        let bigger = LogicalPlan::join(scan("a"), scan("a"), JoinType::Cross, None).unwrap();
        assert!(estimate_cost(&bigger, &est) > estimate_cost(&simple, &est));
    }

    #[test]
    fn global_aggregate_is_one_row() {
        let est = UnknownCardinality;
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("a")),
            group_by: vec![],
            aggs: vec![],
            schema: Schema::empty(),
        };
        assert_eq!(estimate_rows(&agg, &est), 1.0);
    }
}
