//! Provenance rewriting of nested subqueries (sublinks), after
//! Glavic & Alonso, "Provenance for Nested Subqueries" (EDBT 2009).
//!
//! Supported inside a provenance computation:
//!
//! * `x IN (SELECT …)` — unnested into an inner join against the rewritten
//!   subquery: every subquery row equal to `x` is a witness (replicating
//!   the outer tuple, as PI-CS requires).
//! * `EXISTS (SELECT …)` — unnested into a cross join against the rewritten
//!   subquery: if the subquery is non-empty, *each* of its rows witnessed
//!   the outer tuple's survival; if it is empty, the filter discards the
//!   tuple and the cross join correctly produces nothing.
//! * `x NOT IN (…)` / `NOT EXISTS (…)` — the predicate is evaluated as-is
//!   (absence has no witnesses under PI-CS) and the subquery's provenance
//!   attributes are NULL-padded so the result schema still covers all
//!   accessed relations.
//!
//! Correlated sublinks and scalar sublinks inside a provenance computation
//! are rejected with a clear error (the EDBT'09 general strategies are out
//! of scope; ordinary — non-provenance — queries execute them fine).

use perm_types::{PermError, Result};

use perm_algebra::expr::{ScalarExpr, SubqueryExpr, SubqueryKind};
use perm_algebra::plan::{JoinType, LogicalPlan};

use crate::rules::{pad_null_provenance, Ctx, Rewritten};

pub fn rewrite_filter_with_sublinks(
    ctx: &Ctx,
    input: &LogicalPlan,
    predicate: &ScalarExpr,
) -> Result<Rewritten> {
    // Classify the top-level conjuncts.
    let mut plain: Vec<ScalarExpr> = Vec::new();
    let mut positive: Vec<SubqueryExpr> = Vec::new();
    let mut negative: Vec<SubqueryExpr> = Vec::new();
    for c in predicate.split_conjunction() {
        match c {
            ScalarExpr::Subquery(sq) => {
                check_supported(sq)?;
                if sq.negated {
                    negative.push(sq.clone());
                } else {
                    positive.push(sq.clone());
                }
            }
            other => {
                if other.contains_subquery() {
                    return Err(PermError::Rewrite(
                        "sublinks nested inside other predicates (e.g. under OR or \
                         in arithmetic) are not supported in a provenance computation; \
                         only top-level WHERE conjuncts of the form [NOT] IN / [NOT] \
                         EXISTS are"
                            .into(),
                    ));
                }
                plain.push(other.clone());
            }
        }
    }

    let rt = ctx.rewrite(input)?;

    // Plain conjuncts and negated sublinks filter the rewritten input
    // directly (the executor evaluates the embedded subplans).
    let mut residual: Vec<ScalarExpr> = plain.iter().map(|e| rt.remap(e)).collect();
    for sq in &negative {
        residual.push(rt.remap(&ScalarExpr::Subquery(sq.clone())));
    }
    let mut acc = if residual.is_empty() {
        rt
    } else {
        let pred = ScalarExpr::conjunction(residual);
        Rewritten {
            plan: LogicalPlan::filter(rt.plan.clone(), pred),
            ..rt
        }
    };

    // Positive sublinks become joins against the rewritten subquery.
    for sq in &positive {
        let sub = ctx.rewrite(&sq.plan)?.normalized();
        let shift = acc.plan.arity();
        let sub_n = sub.n_orig();
        let sub_p = sub.prov.len();
        let plan = match sq.kind {
            SubqueryKind::In => {
                let operand = acc.remap(sq.operand.as_deref().expect("IN has operand"));
                // x IN (SELECT c FROM …): join on x = c (SQL equality — a
                // NULL x matches nothing, as IN's three-valued semantics
                // filters it out).
                let cond = ScalarExpr::eq(operand, ScalarExpr::Column(shift));
                LogicalPlan::join(acc.plan, sub.plan, JoinType::Inner, Some(cond))?
            }
            SubqueryKind::Exists => LogicalPlan::join(acc.plan, sub.plan, JoinType::Cross, None)?,
            SubqueryKind::Scalar => unreachable!("rejected by check_supported"),
        };
        let mut attrs = std::mem::take(&mut acc.attrs);
        attrs.extend(sub.attrs);
        acc = Rewritten {
            plan,
            orig: acc.orig,
            prov: acc
                .prov
                .iter()
                .copied()
                .chain(sub.prov.iter().map(|&p| shift + p))
                .collect(),
            attrs,
            copy_sets: acc.copy_sets,
        };
        let _ = (sub_n, sub_p);
    }

    // NULL-pad provenance attributes for the negated sublinks' relations so
    // the schema covers every accessed base relation.
    if !negative.is_empty() {
        let mut pad = Vec::new();
        for sq in &negative {
            pad.extend(ctx.rewrite(&sq.plan)?.attrs);
        }
        acc = pad_null_provenance(acc, &pad);
    }
    Ok(acc)
}

fn check_supported(sq: &SubqueryExpr) -> Result<()> {
    if sq.kind == SubqueryKind::Scalar {
        return Err(PermError::Rewrite(
            "scalar subqueries are not supported inside a provenance computation; \
             rewrite the query to a join or compute the subquery eagerly"
                .into(),
        ));
    }
    if sq.correlated {
        return Err(PermError::Rewrite(
            "correlated sublinks are not supported inside a provenance computation; \
             decorrelate the query into a join (ordinary execution of correlated \
             sublinks works)"
                .into(),
        ));
    }
    Ok(())
}
