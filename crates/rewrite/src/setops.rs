//! Provenance rewrite rules for set operations.
//!
//! Union supports **two** rewrite rules — this is the operator class the
//! paper points to when it says "for some operators there is more than one
//! rewrite rule that produces the provenance of the operator" (§2.2) — with
//! a heuristic and a cost-based chooser (see [`crate::options`]).

use std::collections::BTreeSet;

use perm_types::{PermError, Result, Schema, Value};

use perm_algebra::expr::ScalarExpr;
use perm_algebra::plan::{JoinType, LogicalPlan, SetOpType};

use crate::cost::estimate_cost;
use crate::options::{Semantics, StrategyMode, UnionStrategy};
use crate::provattr::ProvAttrInfo;
use crate::rules::{Ctx, Rewritten};

pub fn rewrite_setop(
    ctx: &Ctx,
    original: &LogicalPlan,
    op: SetOpType,
    all: bool,
    left: &LogicalPlan,
    right: &LogicalPlan,
    schema: &Schema,
) -> Result<Rewritten> {
    match op {
        SetOpType::Union => rewrite_union(ctx, original, all, left, right),
        SetOpType::Intersect => rewrite_intersect(ctx, original, left, right, schema),
        SetOpType::Except => rewrite_except(ctx, original, left, right, schema),
    }
}

// ----------------------------------------------------------------------
// Union
// ----------------------------------------------------------------------

fn rewrite_union(
    ctx: &Ctx,
    original: &LogicalPlan,
    all: bool,
    left: &LogicalPlan,
    right: &LogicalPlan,
) -> Result<Rewritten> {
    let strategy = match ctx.options.union_strategy {
        StrategyMode::Fixed(s) => s,
        // Heuristic: the padded union touches each input once; join-back
        // recomputes the original query besides. Padded union wins unless
        // forced otherwise.
        StrategyMode::Heuristic => UnionStrategy::PaddedUnion,
        StrategyMode::CostBased => {
            let padded = padded_union(ctx, all, left, right)?;
            // UNION ALL admits only the padded rule (join-back on result
            // values cannot reconstruct bag multiplicities).
            if all {
                return Ok(padded);
            }
            let join_back = join_back_union(ctx, original, left, right)?;
            let (cp, cj) = (
                estimate_cost(&padded.plan, ctx.estimator),
                estimate_cost(&join_back.plan, ctx.estimator),
            );
            return Ok(if cp <= cj { padded } else { join_back });
        }
    };
    match strategy {
        UnionStrategy::PaddedUnion => padded_union(ctx, all, left, right),
        UnionStrategy::JoinBack if all => Err(PermError::Rewrite(
            "the join-back strategy cannot rewrite UNION ALL \
             (bag multiplicities are lost); use the padded-union strategy"
                .into(),
        )),
        UnionStrategy::JoinBack => join_back_union(ctx, original, left, right),
    }
}

/// Padded-union rule:
///
/// ```text
/// (T1 ∪ T2)+ = Π_{A, P(T1+), NULL…}(T1+)  ∪all  Π_{A, NULL…, P(T2+)}(T2+)
/// ```
///
/// (plus duplicate elimination for set-semantics UNION: one row per
/// distinct (result, witness) pair).
fn padded_union(
    ctx: &Ctx,
    all: bool,
    left: &LogicalPlan,
    right: &LogicalPlan,
) -> Result<Rewritten> {
    let lt = ctx.rewrite(left)?.normalized();
    let rt = ctx.rewrite(right)?.normalized();
    let n = lt.n_orig();
    let (pl, pr) = (lt.prov.len(), rt.prov.len());

    let left_branch = align(lt.clone(), &[], &rt.attrs);
    let right_branch = align(rt.clone(), &lt.attrs, &[]);
    let out_schema = left_branch.plan.schema().clone();

    let mut plan = LogicalPlan::SetOp {
        op: SetOpType::Union,
        all: true,
        left: Box::new(left_branch.plan),
        right: Box::new(right_branch.plan),
        schema: out_schema,
    };
    if !all {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }

    let mut attrs = lt.attrs;
    attrs.extend(rt.attrs);
    let copy_sets: Vec<BTreeSet<usize>> = (0..n)
        .map(|i| {
            let mut s = lt.copy_sets[i].clone();
            s.extend(rt.copy_sets[i].iter().map(|&k| k + pl));
            s
        })
        .collect();
    Ok(Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..n + pl + pr).collect(),
        attrs,
        copy_sets,
    })
}

/// Join-back rule: compute the original `T1 ∪ T2`, then join it (NULL-safe
/// on every result attribute) to the padded union-all of the rewritten
/// branches.
fn join_back_union(
    ctx: &Ctx,
    original: &LogicalPlan,
    left: &LogicalPlan,
    right: &LogicalPlan,
) -> Result<Rewritten> {
    // The padded union of the rewritten branches, without dedup (the join
    // to the distinct original already yields one row per witness).
    let padded = padded_union(ctx, true, left, right)?;
    let n = padded.n_orig();
    let p = padded.prov.len();
    let q = original.clone();
    let cond = not_distinct_on(n, n);
    let join = LogicalPlan::join(q, padded.plan, JoinType::Inner, Some(cond))?;
    // Join schema: [q 0..n][padded n..2n+p]; keep q's columns + provenance.
    let positions: Vec<usize> = (0..n).chain(2 * n..2 * n + p).collect();
    let mut plan = LogicalPlan::project_positions(join, &positions);
    plan = LogicalPlan::Distinct {
        input: Box::new(plan),
    };
    Ok(Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..n + p).collect(),
        attrs: padded.attrs,
        copy_sets: padded.copy_sets,
    })
}

// ----------------------------------------------------------------------
// Intersection
// ----------------------------------------------------------------------

/// Intersection rule: every result tuple pairs each of its left witnesses
/// with each of its right witnesses:
///
/// ```text
/// (T1 ∩ T2)+ = Π_{A, P(T1+), P(T2+)}((T1 ∩ T2) ⋈_{A≡} T1+ ⋈_{A≡} T2+)
/// ```
///
/// where `≡` is NULL-safe equality on all result attributes.
fn rewrite_intersect(
    ctx: &Ctx,
    original: &LogicalPlan,
    left: &LogicalPlan,
    right: &LogicalPlan,
    schema: &Schema,
) -> Result<Rewritten> {
    let lt = ctx.rewrite(left)?.normalized();
    let rt = ctx.rewrite(right)?.normalized();
    let n = schema.len();
    let (pl, pr) = (lt.prov.len(), rt.prov.len());

    let j1 = LogicalPlan::join(
        original.clone(),
        lt.plan,
        JoinType::Inner,
        Some(not_distinct_on(n, n)),
    )?;
    // j1 schema: [q 0..n][L+ n..2n+pl]
    let j2 = LogicalPlan::join(
        j1,
        rt.plan,
        JoinType::Inner,
        Some(not_distinct_on(n, 2 * n + pl)),
    )?;
    // j2 schema: [q][L+][R+ at 2n+pl..3n+pl+pr]
    let positions: Vec<usize> = (0..n)
        .chain(2 * n..2 * n + pl)
        .chain(3 * n + pl..3 * n + pl + pr)
        .collect();
    let plan = LogicalPlan::project_positions(j2, &positions);

    let mut attrs = lt.attrs;
    attrs.extend(rt.attrs);
    let copy_sets: Vec<BTreeSet<usize>> = (0..n)
        .map(|i| {
            let mut s = lt.copy_sets[i].clone();
            s.extend(rt.copy_sets[i].iter().map(|&k| k + pl));
            s
        })
        .collect();
    Ok(Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..n + pl + pr).collect(),
        attrs,
        copy_sets,
    })
}

// ----------------------------------------------------------------------
// Difference
// ----------------------------------------------------------------------

/// Difference rule. Under INFLUENCE (PI-CS), only the left side
/// contributes: right provenance attributes are NULL-padded. Under
/// LINEAGE (Cui-Widom), the *entire* right input additionally contributes
/// to every result tuple.
fn rewrite_except(
    ctx: &Ctx,
    original: &LogicalPlan,
    left: &LogicalPlan,
    right: &LogicalPlan,
    schema: &Schema,
) -> Result<Rewritten> {
    let lt = ctx.rewrite(left)?.normalized();
    let rt = ctx.rewrite(right)?.normalized();
    let n = schema.len();
    let (pl, pr) = (lt.prov.len(), rt.prov.len());

    let j1 = LogicalPlan::join(
        original.clone(),
        lt.plan,
        JoinType::Inner,
        Some(not_distinct_on(n, n)),
    )?;
    // j1 schema: [q 0..n][L+ n..2n+pl]; keep q's columns + left provenance.
    let keep: Vec<usize> = (0..n).chain(2 * n..2 * n + pl).collect();
    let base = LogicalPlan::project_positions(j1, &keep);

    let copy_sets: Vec<BTreeSet<usize>> = (0..n).map(|i| lt.copy_sets[i].clone()).collect();

    match ctx.semantics {
        Semantics::Lineage => {
            // All of T2 contributes: left-outer cross join against the
            // provenance attributes of T2+ (outer so empty T2 pads NULLs).
            let rt_prov_only = LogicalPlan::project_positions(rt.plan.clone(), &rt.prov);
            let j2 = LogicalPlan::join(
                base,
                rt_prov_only,
                JoinType::Left,
                Some(ScalarExpr::Literal(Value::Bool(true))),
            )?;
            let mut attrs = lt.attrs;
            attrs.extend(rt.attrs);
            Ok(Rewritten {
                plan: j2,
                orig: (0..n).collect(),
                prov: (n..n + pl + pr).collect(),
                attrs,
                copy_sets,
            })
        }
        Semantics::Influence | Semantics::Copy(_) => {
            // NULL-pad the right side's provenance attributes.
            let rw = Rewritten {
                plan: base,
                orig: (0..n).collect(),
                prov: (n..n + pl).collect(),
                attrs: lt.attrs,
                copy_sets,
            };
            Ok(crate::rules::pad_null_provenance(rw, &rt.attrs))
        }
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

/// NULL-safe equality of `n` columns starting at 0 on the left side with
/// `n` columns starting at `right_base`.
pub fn not_distinct_on(n: usize, right_base: usize) -> ScalarExpr {
    let preds: Vec<ScalarExpr> = (0..n)
        .map(|i| {
            ScalarExpr::not_distinct(ScalarExpr::Column(i), ScalarExpr::Column(right_base + i))
        })
        .collect();
    ScalarExpr::conjunction(preds)
}

/// Project a normalized rewrite to `[orig][NULLs for `before`][own
/// provenance][NULLs for `after`]`, aligning union branches.
fn align(rw: Rewritten, before: &[ProvAttrInfo], after: &[ProvAttrInfo]) -> Rewritten {
    let n = rw.n_orig();
    let p = rw.prov.len();
    let in_schema = rw.plan.schema().clone();
    let mut exprs: Vec<ScalarExpr> = (0..n).map(ScalarExpr::Column).collect();
    let mut columns: Vec<_> = in_schema.columns()[..n].to_vec();
    for a in before {
        exprs.push(ScalarExpr::Literal(Value::Null));
        columns.push(a.column.clone());
    }
    for k in 0..p {
        exprs.push(ScalarExpr::Column(n + k));
        columns.push(in_schema.column(n + k).clone());
    }
    for a in after {
        exprs.push(ScalarExpr::Literal(Value::Null));
        columns.push(a.column.clone());
    }
    let plan = LogicalPlan::Project {
        input: Box::new(rw.plan),
        exprs,
        schema: Schema::new(columns),
    };
    let total = before.len() + p + after.len();
    Rewritten {
        plan,
        orig: (0..n).collect(),
        prov: (n..n + total).collect(),
        attrs: rw.attrs, // caller rebuilds the combined attribute list
        copy_sets: rw.copy_sets,
    }
}
